"""SplitTLS: today's TLS interception practice (§2.2).

The middlebox holds a *custom root* certificate that has been installed
in the client's trust store (e.g. by an enterprise administrator).  For
each session it mints a certificate for the intended server name, signs
it with the custom root, and terminates the client's TLS connection
itself; a second, independent TLS connection carries the data on to the
real server.  Everything is decrypted and re-encrypted in the middle, and
the middlebox has unrestricted read/write access — the all-or-nothing
model mcTLS replaces.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.crypto.certs import CertificateAuthority, Identity, generate_rsa_key
from repro.tls.client import TLSClient
from repro.tls.connection import ApplicationData, Event, TLSConfig
from repro.tls.server import TLSServer


class SplitTLSRelay:
    """A TLS-terminating middlebox using an interception CA.

    ``interception_ca`` signs the forged server certificate (the client
    must trust its root); ``upstream_config`` configures the relay's own
    TLS client towards the real server.  ``transformer``/``observer`` see
    *all* plaintext in both directions — split TLS has no least privilege.
    """

    def __init__(
        self,
        interception_ca: CertificateAuthority,
        upstream_config: TLSConfig,
        server_name: str,
        transformer: Optional[Callable[[str, bytes], bytes]] = None,
        observer: Optional[Callable[[str, bytes], None]] = None,
        key_bits: int = 2048,
        forged_identity: Optional[Identity] = None,
    ):
        self.transformer = transformer
        self.observer = observer
        self.server_name = server_name

        if forged_identity is not None:
            # Real interception proxies cache forged certificates per
            # server name; callers running many sessions pass one in.
            identity = forged_identity
        else:
            # Mint an impersonation certificate for the server name.
            key = generate_rsa_key(key_bits)
            forged_cert = interception_ca.issue(server_name, key.public_key)
            chain = [forged_cert]
            if not interception_ca.certificate.is_self_signed:
                chain.append(interception_ca.certificate)
            identity = Identity(name=server_name, key=key, chain=tuple(chain))

        downstream_config = TLSConfig(
            identity=identity,
            cipher_suites=upstream_config.cipher_suites,
            dh_group=upstream_config.dh_group,
        )
        self.client_side = TLSServer(downstream_config)  # we act as the server
        self.server_side = TLSClient(upstream_config)  # we act as the client
        self.server_side.start_handshake()

        self._pending_to_server: List[bytes] = []
        self._pending_to_client: List[bytes] = []

    # -- relay interface ------------------------------------------------------

    def ready_to_dial_upstream(self) -> bool:
        """A transparent split-TLS proxy contacts the real server only
        once the client-side handshake has completed and the first
        decrypted request bytes are in hand (squid-style behaviour; this
        is what makes SplitTLS cost the same 4-RTT TTFB as E2E-TLS in the
        paper's Figure 3)."""
        return bool(self.client_side.handshake_complete and self._pending_to_server)

    def receive_from_client(self, data: bytes) -> List[Event]:
        events = self.client_side.receive_data(data)
        for event in events:
            if isinstance(event, ApplicationData):
                self._forward("c2s", event.data)
        self._flush_pending()
        return events

    def receive_from_server(self, data: bytes) -> List[Event]:
        events = self.server_side.receive_data(data)
        for event in events:
            if isinstance(event, ApplicationData):
                self._forward("s2c", event.data)
        self._flush_pending()
        return events

    def data_to_client(self) -> bytes:
        return self.client_side.data_to_send()

    def data_to_server(self) -> bytes:
        return self.server_side.data_to_send()

    def data_to_client_views(self) -> List[bytes]:
        return self.client_side.data_to_send_views()

    def data_to_server_views(self) -> List[bytes]:
        return self.server_side.data_to_send_views()

    # -- plumbing ----------------------------------------------------------------

    def _forward(self, direction: str, payload: bytes) -> None:
        if self.transformer is not None:
            payload = self.transformer(direction, payload)
        if self.observer is not None:
            self.observer(direction, payload)
        if direction == "c2s":
            if self.server_side.handshake_complete:
                self.server_side.send_application_data(payload)
            else:
                self._pending_to_server.append(payload)
        else:
            if self.client_side.handshake_complete:
                self.client_side.send_application_data(payload)
            else:
                self._pending_to_client.append(payload)

    def _flush_pending(self) -> None:
        if self.server_side.handshake_complete and self._pending_to_server:
            for payload in self._pending_to_server:
                self.server_side.send_application_data(payload)
            self._pending_to_server.clear()
        if self.client_side.handshake_complete and self._pending_to_client:
            for payload in self._pending_to_client:
                self.client_side.send_application_data(payload)
            self._pending_to_client.clear()
