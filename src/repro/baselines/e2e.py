"""E2E-TLS: a blind forwarding relay.

The endpoints run plain TLS end to end; the middlebox shuttles bytes
between its two connections without interpreting them.  This is the
paper's "E2E-TLS" baseline: maximal security, zero in-network
functionality, and (as Figure 5 shows) near-zero middlebox CPU cost.
"""

from __future__ import annotations

from typing import List


class BlindRelay:
    """Forwards bytes verbatim in both directions."""

    def __init__(self) -> None:
        self._to_client: List[bytes] = []
        self._to_server: List[bytes] = []
        self.bytes_relayed = 0

    def receive_from_client(self, data: bytes) -> List[object]:
        self._to_server.append(data)
        self.bytes_relayed += len(data)
        return []

    def receive_from_server(self, data: bytes) -> List[object]:
        self._to_client.append(data)
        self.bytes_relayed += len(data)
        return []

    def data_to_client(self) -> bytes:
        out = b"".join(self._to_client)
        self._to_client.clear()
        return out

    def data_to_server(self) -> bytes:
        out = b"".join(self._to_server)
        self._to_server.clear()
        return out

    def data_to_client_views(self) -> List[bytes]:
        views, self._to_client = self._to_client, []
        return views

    def data_to_server_views(self) -> List[bytes]:
        views, self._to_server = self._to_server, []
        return views
