"""Context-assignment strategies for HTTP over mcTLS (§4.1).

A strategy decides how an HTTP message is sliced across encryption
contexts.  Pieces are sent in document order, and mcTLS's global record
ordering guarantees the receiver can reassemble the message by
concatenating payloads in arrival order — so strategies are purely about
*who can see which bytes*.

Built-in strategies (the three compared in Figure 4):

* ``ONE_CONTEXT`` — everything in one context;
* ``FOUR_CONTEXT`` — request headers / request body / response headers /
  response body ("we imagine it will be the most common", §5.1);
* ``context_per_header(...)`` — one context per HTTP header name, plus
  one for each request/status line and body.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.http.messages import CRLF, HttpRequest, HttpResponse
from repro.mctls.contexts import ContextDefinition, Permission

# Canonical context ids for the 4-context strategy.
CTX_REQUEST_HEADERS = 1
CTX_REQUEST_BODY = 2
CTX_RESPONSE_HEADERS = 3
CTX_RESPONSE_BODY = 4

Piece = Tuple[int, bytes]  # (context_id, payload)


@dataclass(frozen=True)
class ContextStrategy:
    """Maps HTTP messages to (context, bytes) pieces.

    ``context_purposes`` maps context id → purpose string; permission
    assignment happens at session setup (the strategy describes structure,
    the application describes trust).
    """

    name: str
    context_purposes: Dict[int, str]
    split_request: Callable[[HttpRequest], List[Piece]]
    split_response: Callable[[HttpResponse], List[Piece]]

    @property
    def context_ids(self) -> List[int]:
        return sorted(self.context_purposes)

    def contexts(
        self, permissions: Optional[Dict[int, Dict[int, Permission]]] = None
    ) -> List[ContextDefinition]:
        """Build context definitions, with per-context middlebox permissions
        (``permissions[ctx_id][mbox_id]``)."""
        permissions = permissions or {}
        return [
            ContextDefinition(
                context_id=ctx_id,
                purpose=purpose,
                permissions=permissions.get(ctx_id, {}),
            )
            for ctx_id, purpose in sorted(self.context_purposes.items())
        ]

    def uniform_permissions(
        self, mbox_ids: Sequence[int], permission: Permission
    ) -> List[ContextDefinition]:
        """Grant every middlebox the same permission on every context —
        the paper's worst case for mcTLS performance (§5 setup)."""
        grant = {mbox_id: permission for mbox_id in mbox_ids}
        return [
            ContextDefinition(context_id=ctx_id, purpose=purpose, permissions=dict(grant))
            for ctx_id, purpose in sorted(self.context_purposes.items())
        ]


# -- 1-context -----------------------------------------------------------


def _one_ctx_request(request: HttpRequest) -> List[Piece]:
    return [(1, request.encode())]


def _one_ctx_response(response: HttpResponse) -> List[Piece]:
    return [(1, response.encode())]


ONE_CONTEXT = ContextStrategy(
    name="1-Context",
    context_purposes={1: "all data"},
    split_request=_one_ctx_request,
    split_response=_one_ctx_response,
)


# -- 4-context -----------------------------------------------------------


def _four_ctx_request(request: HttpRequest) -> List[Piece]:
    pieces = [(CTX_REQUEST_HEADERS, request.header_block())]
    if request.body:
        pieces.append((CTX_REQUEST_BODY, request.body))
    return pieces


def _four_ctx_response(response: HttpResponse) -> List[Piece]:
    pieces = [(CTX_RESPONSE_HEADERS, response.header_block())]
    if response.body:
        pieces.append((CTX_RESPONSE_BODY, response.body))
    return pieces


FOUR_CONTEXT = ContextStrategy(
    name="4-Context",
    context_purposes={
        CTX_REQUEST_HEADERS: "request headers",
        CTX_REQUEST_BODY: "request body",
        CTX_RESPONSE_HEADERS: "response headers",
        CTX_RESPONSE_BODY: "response body",
    },
    split_request=_four_ctx_request,
    split_response=_four_ctx_response,
)


# -- context-per-header -----------------------------------------------------


def context_per_header(header_names: Sequence[str]) -> ContextStrategy:
    """One context per (known) header name, plus line/body/overflow contexts.

    Layout: ctx 1 = request line + terminator pieces, ctx 2 = request
    body, ctx 3 = status line, ctx 4 = response body, ctx 5.. = one per
    header name (shared by request and response), last ctx = headers not
    in ``header_names``.
    """
    purposes = {
        1: "request line",
        2: "request body",
        3: "status line",
        4: "response body",
    }
    header_ctx: Dict[str, int] = {}
    next_ctx = 5
    for name in header_names:
        key = name.lower()
        if key not in header_ctx:
            header_ctx[key] = next_ctx
            purposes[next_ctx] = f"header: {name}"
            next_ctx += 1
    other_ctx = next_ctx
    purposes[other_ctx] = "other headers"

    def split_request(request: HttpRequest) -> List[Piece]:
        pieces = [
            (1, f"{request.method} {request.target} {request.version}".encode() + CRLF)
        ]
        for name, value in request.headers:
            ctx = header_ctx.get(name.lower(), other_ctx)
            pieces.append((ctx, f"{name}: {value}".encode("ascii") + CRLF))
        pieces.append((1, CRLF))
        if request.body:
            pieces.append((2, request.body))
        return pieces

    def split_response(response: HttpResponse) -> List[Piece]:
        pieces = [
            (3, f"{response.version} {response.status} {response.reason}".encode() + CRLF)
        ]
        for name, value in response.headers:
            ctx = header_ctx.get(name.lower(), other_ctx)
            pieces.append((ctx, f"{name}: {value}".encode("ascii") + CRLF))
        pieces.append((3, CRLF))
        if response.body:
            pieces.append((4, response.body))
        return pieces

    return ContextStrategy(
        name="Context-per-Header",
        context_purposes=purposes,
        split_request=split_request,
        split_response=split_response,
    )


# The header set our synthetic workloads use; yields the strategy the
# paper calls "CtxPerHdr".
DEFAULT_HEADERS = (
    "Host",
    "User-Agent",
    "Accept",
    "Cookie",
    "Content-Length",
    "Content-Type",
    "Cache-Control",
)

CONTEXT_PER_HEADER = context_per_header(DEFAULT_HEADERS)


# -- media-split strategy (§4.2 compression-proxy refinement) -------------

CTX_RESPONSE_MEDIA = 5


def _media_ctx_response(response: HttpResponse) -> List[Piece]:
    """Route image/video bodies to a separate context.

    The paper's compression-proxy use case: "the browser and web server
    could coordinate to use two contexts for responses: one for images,
    which the proxy can access, and the other for HTML, CSS, and
    scripts, which the proxy cannot."  The server picks the body context
    from the Content-Type it is about to send.
    """
    content_type = (response.get_header("Content-Type") or "").lower()
    is_media = content_type.startswith(("image/", "video/", "audio/"))
    body_ctx = CTX_RESPONSE_MEDIA if is_media else CTX_RESPONSE_BODY
    pieces = [(CTX_RESPONSE_HEADERS, response.header_block())]
    if response.body:
        pieces.append((body_ctx, response.body))
    return pieces


MEDIA_SPLIT = ContextStrategy(
    name="Media-Split",
    context_purposes={
        CTX_REQUEST_HEADERS: "request headers",
        CTX_REQUEST_BODY: "request body",
        CTX_RESPONSE_HEADERS: "response headers",
        CTX_RESPONSE_BODY: "response body (documents)",
        CTX_RESPONSE_MEDIA: "response body (media)",
    },
    split_request=_four_ctx_request,
    split_response=_media_ctx_response,
)
