"""A small HTTP/1.1 substrate.

Provides the message codecs, an incremental parser, context-assignment
strategies for running HTTP over mcTLS (§4.1: 1-Context, 4-Context,
Context-per-Header), and client/server session adapters that work over
any of the session types (mcTLS, TLS, plain).
"""

from repro.http.messages import HttpParser, HttpRequest, HttpResponse
from repro.http.strategies import (
    ContextStrategy,
    FOUR_CONTEXT,
    ONE_CONTEXT,
    context_per_header,
)
from repro.http.session import HttpClientSession, HttpServerSession

__all__ = [
    "ContextStrategy",
    "FOUR_CONTEXT",
    "HttpClientSession",
    "HttpParser",
    "HttpRequest",
    "HttpResponse",
    "HttpServerSession",
    "ONE_CONTEXT",
    "context_per_header",
]
