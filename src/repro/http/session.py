"""HTTP client/server sessions over any sans-I/O connection.

The sessions speak to a connection object through two touchpoints only:
``send_application_data(data, context_id=...)`` for output, and the
application-data events the harness feeds back in via ``on_data``.  They
therefore run unchanged over mcTLS, TLS, and plain TCP — which is exactly
how the experiments swap protocols.

With a :class:`~repro.http.strategies.ContextStrategy`, outgoing messages
are sliced across encryption contexts; without one, messages go out whole
(correct for TLS/plain, and equivalent to 1-Context for mcTLS).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional

from repro.http.messages import HttpParser, HttpRequest, HttpResponse
from repro.http.strategies import ContextStrategy

ResponseCallback = Callable[[HttpResponse], None]
RequestHandler = Callable[[HttpRequest], HttpResponse]


class HttpClientSession:
    """Issues pipelined HTTP requests; responses dispatch FIFO."""

    def __init__(self, connection, strategy: Optional[ContextStrategy] = None):
        self.connection = connection
        self.strategy = strategy
        self._parser = HttpParser("response")
        self._waiting: Deque[ResponseCallback] = deque()
        self.requests_sent = 0
        self.responses_received = 0

    def request(self, request: HttpRequest, on_response: ResponseCallback) -> None:
        """Send ``request``; ``on_response`` fires when its response lands."""
        self._waiting.append(on_response)
        self.requests_sent += 1
        if self.strategy is None:
            self.connection.send_application_data(request.encode())
        else:
            for context_id, piece in self.strategy.split_request(request):
                self.connection.send_application_data(piece, context_id=context_id)

    def on_data(self, data: bytes) -> None:
        """Feed response bytes (from application-data events)."""
        for message in self._parser.feed(data):
            if not self._waiting:
                raise RuntimeError("response received with no request outstanding")
            self.responses_received += 1
            callback = self._waiting.popleft()
            callback(self._decode_body(message))

    @staticmethod
    def _decode_body(response: HttpResponse) -> HttpResponse:
        """Transparently inflate deflate-encoded bodies (as produced by
        the compression-proxy middlebox)."""
        if response.get_header("Content-Encoding") == "deflate":
            import zlib

            response.body = zlib.decompress(response.body)
            response.headers = [
                (k, v)
                for k, v in response.headers
                if k.lower() not in ("content-encoding", "content-length")
            ]
            response.headers.append(("Content-Length", str(len(response.body))))
        return response

    @property
    def idle(self) -> bool:
        return not self._waiting


class HttpServerSession:
    """Parses requests and answers them through ``handler``."""

    def __init__(
        self,
        connection,
        handler: RequestHandler,
        strategy: Optional[ContextStrategy] = None,
    ):
        self.connection = connection
        self.handler = handler
        self.strategy = strategy
        self._parser = HttpParser("request")
        self.requests_served = 0

    def on_data(self, data: bytes) -> None:
        for request in self._parser.feed(data):
            response = self.handler(request)
            self.requests_served += 1
            if self.strategy is None:
                self.connection.send_application_data(response.encode())
            else:
                for context_id, piece in self.strategy.split_response(response):
                    self.connection.send_application_data(piece, context_id=context_id)
