"""Multiplexed streams over mcTLS contexts (the HTTP/2 use case, §4.2).

"One of the features of HTTP/2 is multiplexing multiple streams over a
single transport connection. mcTLS allows browsers to easily set
different access controls for each stream."

:class:`StreamMultiplexer` maps logical streams onto encryption contexts:
each stream is bound to one context at creation, so per-stream access
control falls out of mcTLS's per-context permissions.  Frames are
length-prefixed with a stream id, so several streams can share a context
(e.g. all image streams in a "middlebox may compress" context while API
streams live in an endpoint-only context).

Frame format (inside a context's record stream)::

    stream_id(4) || flags(1) || length(3) || payload

Flags: 0x01 = END_STREAM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

FLAG_END_STREAM = 0x01
_FRAME_HEADER = 8
MAX_FRAME_PAYLOAD = (1 << 24) - 1


class StreamError(Exception):
    """Raised on protocol violations in the stream layer."""


@dataclass
class StreamEvent:
    """Data (or end-of-stream) delivered for one stream."""

    stream_id: int
    context_id: int
    data: bytes
    end_stream: bool = False


def encode_frame(stream_id: int, payload: bytes, end_stream: bool = False) -> bytes:
    if len(payload) > MAX_FRAME_PAYLOAD:
        raise StreamError("frame payload too long")
    flags = FLAG_END_STREAM if end_stream else 0
    return (
        stream_id.to_bytes(4, "big")
        + bytes([flags])
        + len(payload).to_bytes(3, "big")
        + payload
    )


class _FrameBuffer:
    """Reassembles frames from one context's byte stream."""

    def __init__(self) -> None:
        self._buf = bytearray()

    def feed(self, data: bytes) -> List[Tuple[int, int, bytes]]:
        self._buf += data
        frames = []
        while len(self._buf) >= _FRAME_HEADER:
            stream_id = int.from_bytes(self._buf[:4], "big")
            flags = self._buf[4]
            length = int.from_bytes(self._buf[5:8], "big")
            if len(self._buf) < _FRAME_HEADER + length:
                break
            payload = bytes(self._buf[_FRAME_HEADER : _FRAME_HEADER + length])
            del self._buf[: _FRAME_HEADER + length]
            frames.append((stream_id, flags, payload))
        return frames


class StreamMultiplexer:
    """Logical streams over an mcTLS connection's contexts.

    One multiplexer per endpoint.  Both endpoints must open streams with
    the same (stream_id → context) binding; by convention the client uses
    odd stream ids and the server even ones (like HTTP/2), so ids never
    collide.
    """

    def __init__(self, connection, is_client: bool = True):
        self.connection = connection
        self.is_client = is_client
        self._next_id = 1 if is_client else 2
        self._stream_context: Dict[int, int] = {}
        self._closed_local: set = set()
        self._closed_remote: set = set()
        self._buffers: Dict[int, _FrameBuffer] = {}

    # -- opening / sending ----------------------------------------------

    def open_stream(self, context_id: int, stream_id: Optional[int] = None) -> int:
        """Open a stream bound to ``context_id``; returns the stream id."""
        if stream_id is None:
            stream_id = self._next_id
            self._next_id += 2
        if stream_id in self._stream_context:
            raise StreamError(f"stream {stream_id} already open")
        self._stream_context[stream_id] = context_id
        return stream_id

    def send(self, stream_id: int, data: bytes, end_stream: bool = False) -> None:
        context_id = self._context_for(stream_id)
        if stream_id in self._closed_local:
            raise StreamError(f"stream {stream_id} already closed locally")
        frame = encode_frame(stream_id, data, end_stream=end_stream)
        self.connection.send_application_data(frame, context_id=context_id)
        if end_stream:
            self._closed_local.add(stream_id)

    def close_stream(self, stream_id: int) -> None:
        self.send(stream_id, b"", end_stream=True)

    def _context_for(self, stream_id: int) -> int:
        try:
            return self._stream_context[stream_id]
        except KeyError:
            raise StreamError(f"unknown stream {stream_id}") from None

    # -- receiving -----------------------------------------------------------

    def on_application_data(self, context_id: int, data: bytes) -> List[StreamEvent]:
        """Feed one context's application data; returns stream events.

        A peer-opened stream is registered implicitly with the context it
        first appears in.
        """
        buffer = self._buffers.setdefault(context_id, _FrameBuffer())
        events = []
        for stream_id, flags, payload in buffer.feed(data):
            bound = self._stream_context.setdefault(stream_id, context_id)
            if bound != context_id:
                raise StreamError(
                    f"stream {stream_id} moved contexts ({bound} → {context_id})"
                )
            end = bool(flags & FLAG_END_STREAM)
            if stream_id in self._closed_remote:
                raise StreamError(f"data on remotely closed stream {stream_id}")
            if end:
                self._closed_remote.add(stream_id)
            events.append(
                StreamEvent(
                    stream_id=stream_id,
                    context_id=context_id,
                    data=payload,
                    end_stream=end,
                )
            )
        return events

    # -- introspection ----------------------------------------------------------

    @property
    def open_streams(self) -> List[int]:
        return [
            s
            for s in self._stream_context
            if s not in self._closed_local or s not in self._closed_remote
        ]

    def context_of(self, stream_id: int) -> int:
        return self._context_for(stream_id)
