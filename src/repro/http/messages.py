"""HTTP/1.1 message codecs and an incremental parser.

Deliberately small: request line / status line, headers, and
Content-Length-delimited bodies (the experiments always set
Content-Length).  Header order is preserved — the Context-per-Header
strategy depends on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

CRLF = b"\r\n"
HEADER_END = b"\r\n\r\n"


class HttpError(Exception):
    """Raised on malformed HTTP messages."""


@dataclass
class HttpRequest:
    method: str = "GET"
    target: str = "/"
    headers: List[Tuple[str, str]] = field(default_factory=list)
    body: bytes = b""
    version: str = "HTTP/1.1"

    def __post_init__(self) -> None:
        if self.body and not self.get_header("Content-Length"):
            self.headers.append(("Content-Length", str(len(self.body))))

    def get_header(self, name: str) -> Optional[str]:
        for key, value in self.headers:
            if key.lower() == name.lower():
                return value
        return None

    def header_block(self) -> bytes:
        lines = [f"{self.method} {self.target} {self.version}".encode("ascii")]
        lines += [f"{k}: {v}".encode("ascii") for k, v in self.headers]
        return CRLF.join(lines) + HEADER_END

    def encode(self) -> bytes:
        return self.header_block() + self.body


@dataclass
class HttpResponse:
    status: int = 200
    reason: str = "OK"
    headers: List[Tuple[str, str]] = field(default_factory=list)
    body: bytes = b""
    version: str = "HTTP/1.1"

    def __post_init__(self) -> None:
        if self.get_header("Content-Length") is None:
            self.headers.append(("Content-Length", str(len(self.body))))

    def get_header(self, name: str) -> Optional[str]:
        for key, value in self.headers:
            if key.lower() == name.lower():
                return value
        return None

    def header_block(self) -> bytes:
        lines = [f"{self.version} {self.status} {self.reason}".encode("ascii")]
        lines += [f"{k}: {v}".encode("ascii") for k, v in self.headers]
        return CRLF.join(lines) + HEADER_END

    def encode(self) -> bytes:
        return self.header_block() + self.body


def _parse_headers(block: bytes) -> List[Tuple[str, str]]:
    headers = []
    for line in block.split(CRLF):
        if not line:
            continue
        if b":" not in line:
            raise HttpError(f"malformed header line: {line!r}")
        name, _, value = line.partition(b":")
        headers.append((name.decode("ascii").strip(), value.decode("ascii").strip()))
    return headers


class HttpParser:
    """Incremental parser; feed bytes, harvest complete messages.

    ``kind`` selects request or response parsing.
    """

    def __init__(self, kind: str):
        if kind not in ("request", "response"):
            raise ValueError("kind must be 'request' or 'response'")
        self.kind = kind
        self._buf = bytearray()
        self._messages: List[object] = []
        self._pending = None  # headers parsed, awaiting body
        self._body_needed = 0

    def feed(self, data: bytes) -> List[object]:
        """Feed bytes; returns any messages completed by them."""
        self._buf += data
        while self._advance():
            pass
        messages, self._messages = self._messages, []
        return messages

    def _advance(self) -> bool:
        if self._pending is not None:
            if len(self._buf) < self._body_needed:
                return False
            body = bytes(self._buf[: self._body_needed])
            del self._buf[: self._body_needed]
            message = self._pending
            message.body = body
            self._pending = None
            self._messages.append(message)
            return True

        end = self._buf.find(HEADER_END)
        if end < 0:
            return False
        head = bytes(self._buf[:end])
        del self._buf[: end + len(HEADER_END)]
        message = self._parse_head(head)
        length = message.get_header("Content-Length")
        self._body_needed = int(length) if length else 0
        if self._body_needed:
            self._pending = message
        else:
            self._messages.append(message)
        return True

    def _parse_head(self, head: bytes):
        first_line, _, header_block = head.partition(CRLF)
        if self.kind == "request":
            parts = first_line.split(b" ", 2)
            if len(parts) != 3:
                raise HttpError(f"malformed request line: {first_line!r}")
            request = HttpRequest(
                method=parts[0].decode("ascii"),
                target=parts[1].decode("ascii"),
                version=parts[2].decode("ascii"),
                headers=_parse_headers(header_block),
            )
            return request
        parts = first_line.split(b" ", 2)
        if len(parts) < 2:
            raise HttpError(f"malformed status line: {first_line!r}")
        return HttpResponse(
            version=parts[0].decode("ascii"),
            status=int(parts[1]),
            reason=parts[2].decode("ascii") if len(parts) > 2 else "",
            headers=_parse_headers(header_block),
        )
