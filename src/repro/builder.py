"""A high-level session builder — the deployability claim, §5.4.

The paper built a 17-line Ruby web client on its library to argue mcTLS
integrates easily.  :class:`SessionBuilder` is that argument for this
library: declare who participates and who may see what, and get fully
wired endpoint/middlebox objects (plus an in-memory chain for tests and
demos) without touching certificates, topologies or configs directly.

    from repro.builder import SessionBuilder

    session = (SessionBuilder(server_name="shop.example")
               .context("headers", middleboxes={"proxy.isp": "read"})
               .context("payload")
               .middlebox("proxy.isp")
               .build())
    session.client.send_application_data(b"GET /", context_id=session.ctx("headers"))
    session.pump()
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.crypto.certs import CertificateAuthority, Identity
from repro.crypto.dh import GROUP_MODP_1024, DHGroup
from repro.mctls import (
    ContextDefinition,
    HandshakeMode,
    KeyTransport,
    McTLSClient,
    McTLSMiddlebox,
    McTLSServer,
    MiddleboxInfo,
    Permission,
    SessionTopology,
)
from repro.tls.connection import TLSConfig
from repro.transport import Chain

_PERMISSIONS = {
    "none": Permission.NONE,
    "read": Permission.READ,
    "write": Permission.WRITE,
}


@dataclass
class BuiltSession:
    """Everything :class:`SessionBuilder.build` produces, ready to use."""

    client: McTLSClient
    middleboxes: List[McTLSMiddlebox]
    server: McTLSServer
    chain: Chain
    topology: SessionTopology
    ca: CertificateAuthority
    _context_ids: Dict[str, int] = field(default_factory=dict)

    def ctx(self, purpose: str) -> int:
        """Look up a context id by the purpose given to the builder."""
        return self._context_ids[purpose]

    def pump(self):
        """Deliver all pending in-memory bytes; returns new events."""
        return self.chain.pump()


class SessionBuilder:
    """Fluent construction of a complete mcTLS session.

    A throwaway CA and identities are generated unless provided — the
    ten lines a real deployment replaces with its actual PKI.
    """

    def __init__(
        self,
        server_name: str = "server.example",
        key_bits: int = 1024,
        dh_group: Optional[DHGroup] = None,
        mode: HandshakeMode = HandshakeMode.DEFAULT,
        key_transport: KeyTransport = KeyTransport.DHE,
        ca: Optional[CertificateAuthority] = None,
    ):
        self.server_name = server_name
        self.key_bits = key_bits
        self.dh_group = dh_group or GROUP_MODP_1024
        self.mode = mode
        self.key_transport = key_transport
        self._ca = ca
        self._middlebox_order: List[str] = []
        self._middlebox_kwargs: Dict[str, dict] = {}
        self._contexts: List[dict] = []
        self._topology_policy = None

    # -- declaration ------------------------------------------------------

    def middlebox(self, name: str, transformer=None, observer=None) -> "SessionBuilder":
        """Add a middlebox (path order = declaration order)."""
        if name in self._middlebox_order:
            raise ValueError(f"middlebox {name!r} declared twice")
        self._middlebox_order.append(name)
        self._middlebox_kwargs[name] = {
            "transformer": transformer,
            "observer": observer,
        }
        return self

    def context(
        self, purpose: str, middleboxes: Optional[Dict[str, str]] = None
    ) -> "SessionBuilder":
        """Add a context; ``middleboxes`` maps name → 'read'/'write'."""
        if any(c["purpose"] == purpose for c in self._contexts):
            raise ValueError(f"context purpose {purpose!r} declared twice")
        self._contexts.append({"purpose": purpose, "grants": dict(middleboxes or {})})
        return self

    def server_policy(self, policy) -> "SessionBuilder":
        """Attach a server-side topology policy (e.g. restrict_topology)."""
        self._topology_policy = policy
        return self

    # -- construction ------------------------------------------------------------

    def build(self) -> BuiltSession:
        if not self._contexts:
            self.context("default")

        ca = self._ca or CertificateAuthority.create_root(
            "SessionBuilder CA", key_bits=self.key_bits
        )
        server_identity = Identity.issued_by(ca, self.server_name, key_bits=self.key_bits)
        mbox_identities = {
            name: Identity.issued_by(ca, name, key_bits=self.key_bits)
            for name in self._middlebox_order
        }

        name_to_id = {name: i + 1 for i, name in enumerate(self._middlebox_order)}
        context_ids: Dict[str, int] = {}
        definitions = []
        for index, spec in enumerate(self._contexts):
            ctx_id = index + 1
            context_ids[spec["purpose"]] = ctx_id
            permissions = {}
            for mbox_name, level in spec["grants"].items():
                if mbox_name not in name_to_id:
                    raise ValueError(
                        f"context {spec['purpose']!r} grants access to "
                        f"undeclared middlebox {mbox_name!r}"
                    )
                permission = _PERMISSIONS.get(level)
                if permission is None:
                    raise ValueError(f"unknown permission level {level!r}")
                if permission is not Permission.NONE:
                    permissions[name_to_id[mbox_name]] = permission
            definitions.append(
                ContextDefinition(ctx_id, spec["purpose"], permissions)
            )

        topology = SessionTopology(
            middleboxes=[
                MiddleboxInfo(name_to_id[name], name) for name in self._middlebox_order
            ],
            contexts=definitions,
        )

        client = McTLSClient(
            TLSConfig(
                trusted_roots=[ca.certificate],
                server_name=self.server_name,
                dh_group=self.dh_group,
            ),
            topology=topology,
            key_transport=self.key_transport,
        )
        server = McTLSServer(
            TLSConfig(
                identity=server_identity,
                trusted_roots=[ca.certificate],
                dh_group=self.dh_group,
            ),
            mode=self.mode,
            topology_policy=self._topology_policy,
        )
        middleboxes = [
            McTLSMiddlebox(
                name,
                TLSConfig(
                    identity=mbox_identities[name],
                    trusted_roots=[ca.certificate],
                    dh_group=self.dh_group,
                ),
                **self._middlebox_kwargs[name],
            )
            for name in self._middlebox_order
        ]
        chain = Chain(client, middleboxes, server)
        client.start_handshake()
        chain.pump()
        return BuiltSession(
            client=client,
            middleboxes=middleboxes,
            server=server,
            chain=chain,
            topology=topology,
            ca=ca,
            _context_ids=context_ids,
        )
