"""A packet pacer (Table 1 row: Packet Pacer).

Permissions: read-only on the response body — pacing needs to *see* the
bulk data stream (to measure and schedule it) but never changes a byte.
The actual pacing action is a transport-layer concern; this app computes
the pacing schedule (token bucket) and reports how much delay it would
inject, which the simulation harness can apply to the relay's output.
"""

from __future__ import annotations

from typing import Callable, List, Tuple

from repro.mctls.contexts import Permission
from repro.middleboxes.base import HttpMiddleboxApp, PermissionSpec


class PacketPacer(HttpMiddleboxApp):
    DISPLAY_NAME = "Packet Pacer"
    PERMISSIONS = PermissionSpec(response_body=Permission.READ)

    def __init__(
        self,
        name,
        config,
        target_rate_bps: float = 2e6,
        clock: Callable[[], float] = None,
    ):
        super().__init__(name, config)
        if target_rate_bps <= 0:
            raise ValueError("target rate must be positive")
        self.target_rate_bps = target_rate_bps
        self.clock = clock or (lambda: 0.0)
        self._next_release = 0.0
        self.bytes_paced = 0
        #: (observed_time, scheduled_release_time, size) per body record.
        self.schedule: List[Tuple[float, float, int]] = []

    def observe_response_body(self, payload: bytes) -> None:
        now = self.clock()
        release = max(now, self._next_release)
        transmit_time = len(payload) * 8 / self.target_rate_bps
        self._next_release = release + transmit_time
        self.bytes_paced += len(payload)
        self.schedule.append((now, release, len(payload)))

    @property
    def total_injected_delay(self) -> float:
        """Total pacing delay the schedule would add."""
        return sum(release - seen for seen, release, _ in self.schedule)
