"""An HTTP cache proxy (Table 1 row: Cache).

Permissions: read request headers; read/write response headers and body.

mcTLS record semantics forbid a middlebox from injecting records, so an
in-session cache cannot short-circuit a request the way a cleartext cache
would.  What it *can* do — and what this app does — is maintain the cache
(keyed by ``Host + target``), annotate responses with ``X-Cache:
HIT|MISS`` so downstream parties observe cachability, and expose hit
statistics.  Serving from cache would happen at session setup (the client
opens its session *to the cache*, which is then an endpoint, not a
middlebox) — a deployment choice the paper discusses in §4.2.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.http.messages import HttpParser
from repro.mctls.contexts import Permission
from repro.middleboxes.base import HttpMiddleboxApp, PermissionSpec


class CacheProxy(HttpMiddleboxApp):
    DISPLAY_NAME = "Cache"
    PERMISSIONS = PermissionSpec(
        request_headers=Permission.READ,
        response_headers=Permission.WRITE,
        response_body=Permission.WRITE,
    )

    def __init__(self, name, config, max_entries: int = 1024):
        super().__init__(name, config)
        self.max_entries = max_entries
        self._request_parser = HttpParser("request")
        self._pending_urls = []  # FIFO of URLs awaiting their responses
        self._current_url: Optional[str] = None
        self._current_body = bytearray()
        self._current_cacheable = False
        self.store: Dict[str, bytes] = {}
        self.hits = 0
        self.misses = 0

    # -- request side (read-only) ---------------------------------------

    def observe_request_headers(self, payload: bytes) -> None:
        for request in self._request_parser.feed(payload):
            host = request.get_header("Host") or ""
            self._pending_urls.append(f"{host}{request.target}")

    # -- response side (read/write) -----------------------------------------

    def transform_response_headers(self, payload: bytes) -> bytes:
        if not self._pending_urls:
            return payload
        self._finish_current()
        self._current_url = self._pending_urls.pop(0)
        if self._current_url in self.store:
            self.hits += 1
            verdict = b"HIT"
            self._current_cacheable = False
        else:
            self.misses += 1
            verdict = b"MISS"
            self._current_cacheable = True
        # Annotate: insert the X-Cache header before the terminating CRLF.
        if payload.endswith(b"\r\n\r\n"):
            return payload[:-2] + b"X-Cache: " + verdict + b"\r\n\r\n"
        return payload

    def transform_response_body(self, payload: bytes) -> bytes:
        if self._current_cacheable:
            self._current_body += payload
        return payload

    def _finish_current(self) -> None:
        if self._current_url is not None and self._current_cacheable:
            if len(self.store) < self.max_entries:
                self.store[self._current_url] = bytes(self._current_body)
        self._current_url = None
        self._current_body = bytearray()
        self._current_cacheable = False

    def flush(self) -> None:
        """Commit the in-flight response to the cache (call at idle)."""
        self._finish_current()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
