"""A tracker blocker (Table 1 row: Tracker Blocker).

Permissions: read/write request headers and response headers — it strips
tracking state (cookies, tracking headers) in both directions without
ever seeing a body byte.
"""

from __future__ import annotations

from typing import Sequence

from repro.http.messages import CRLF, HEADER_END
from repro.mctls.contexts import Permission
from repro.middleboxes.base import HttpMiddleboxApp, PermissionSpec

DEFAULT_BLOCKED_HEADERS = (
    "cookie",
    "set-cookie",
    "x-tracking-id",
    "x-client-id",
    "referer",
)


class TrackerBlocker(HttpMiddleboxApp):
    DISPLAY_NAME = "Tracker Blocker"
    PERMISSIONS = PermissionSpec(
        request_headers=Permission.WRITE,
        response_headers=Permission.WRITE,
    )

    def __init__(self, name, config, blocked_headers: Sequence[str] = DEFAULT_BLOCKED_HEADERS):
        super().__init__(name, config)
        self.blocked_headers = {h.lower() for h in blocked_headers}
        self.headers_stripped = 0

    def _strip(self, payload: bytes) -> bytes:
        """Remove blocked header lines from a header block payload."""
        if HEADER_END not in payload:
            return payload  # not a complete header block; leave untouched
        head, _, rest = payload.partition(HEADER_END)
        lines = head.split(CRLF)
        kept = [lines[0]]  # request/status line
        for line in lines[1:]:
            name = line.split(b":", 1)[0].strip().lower().decode("ascii", "replace")
            if name in self.blocked_headers:
                self.headers_stripped += 1
            else:
                kept.append(line)
        return CRLF.join(kept) + HEADER_END + rest

    def transform_request_headers(self, payload: bytes) -> bytes:
        return self._strip(payload)

    def transform_response_headers(self, payload: bytes) -> bytes:
        return self._strip(payload)
