"""A WAN optimizer (Table 1 row: WAN Optimizer).

Permissions: read-only on all four contexts.  Classic WAN optimizers
deduplicate redundant content between site pairs; the read-only variant
modelled here performs the *detection* half — content-defined chunking
(rolling-hash boundaries) and a chunk fingerprint store — and reports the
redundancy it would eliminate.  This matches the paper's Table 1, which
grants the WAN optimizer observation rights, not modification rights.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Set

from repro.mctls.contexts import Permission
from repro.middleboxes.base import HttpMiddleboxApp, PermissionSpec

# Content-defined chunking parameters.
_WINDOW = 16
_BOUNDARY_MASK = 0x3F  # expected chunk size ≈ 64 bytes + minimum
_MIN_CHUNK = 32
_MAX_CHUNK = 1024


def chunk_boundaries(data: bytes):
    """Yield chunk end offsets using a additive rolling hash."""
    rolling = 0
    start = 0
    for i, byte in enumerate(data):
        rolling = (rolling * 31 + byte) & 0xFFFFFFFF
        length = i - start + 1
        if (length >= _MIN_CHUNK and (rolling & _BOUNDARY_MASK) == 0) or length >= _MAX_CHUNK:
            yield i + 1
            start = i + 1
    if start < len(data):
        yield len(data)


class WanOptimizer(HttpMiddleboxApp):
    DISPLAY_NAME = "WAN Optimizer"
    PERMISSIONS = PermissionSpec(
        request_headers=Permission.READ,
        request_body=Permission.READ,
        response_headers=Permission.READ,
        response_body=Permission.READ,
    )

    def __init__(self, name, config):
        super().__init__(name, config)
        self.fingerprints: Set[bytes] = set()
        self.total_bytes = 0
        self.redundant_bytes = 0

    def _ingest(self, payload: bytes) -> None:
        self.total_bytes += len(payload)
        start = 0
        for end in chunk_boundaries(payload):
            chunk = payload[start:end]
            fingerprint = hashlib.sha256(chunk).digest()[:8]
            if fingerprint in self.fingerprints:
                self.redundant_bytes += len(chunk)
            else:
                self.fingerprints.add(fingerprint)
            start = end

    observe_request_headers = _ingest
    observe_request_body = _ingest
    observe_response_headers = _ingest
    observe_response_body = _ingest

    @property
    def redundancy_ratio(self) -> float:
        return self.redundant_bytes / self.total_bytes if self.total_bytes else 0.0
