"""A content-aware load balancer (Table 1 row: Load Balancer).

Permissions: read request headers only — enough to compute a routing
decision (host/path affinity hashing) without seeing bodies or responses.

Inside one established mcTLS session the path is fixed, so the decision
recorded here models the front-end routing step: the balancer reads the
request headers, picks a backend deterministically, and exposes its
per-backend distribution.
"""

from __future__ import annotations

import hashlib
from collections import Counter
from typing import List, Sequence

from repro.http.messages import HttpParser
from repro.mctls.contexts import Permission
from repro.middleboxes.base import HttpMiddleboxApp, PermissionSpec


class LoadBalancer(HttpMiddleboxApp):
    DISPLAY_NAME = "Load Balancer"
    PERMISSIONS = PermissionSpec(request_headers=Permission.READ)

    def __init__(self, name, config, backends: Sequence[str] = ("backend-a", "backend-b")):
        super().__init__(name, config)
        if not backends:
            raise ValueError("at least one backend is required")
        self.backends = list(backends)
        self._parser = HttpParser("request")
        self.decisions: List[str] = []
        self.distribution: Counter = Counter()

    def observe_request_headers(self, payload: bytes) -> None:
        for request in self._parser.feed(payload):
            backend = self.pick_backend(request.get_header("Host") or "", request.target)
            self.decisions.append(backend)
            self.distribution[backend] += 1

    def pick_backend(self, host: str, target: str) -> str:
        """Deterministic affinity hash of host + first path segment."""
        segment = target.split("/")[1] if "/" in target[1:] or target.count("/") else ""
        key = f"{host}/{segment}".encode("utf-8")
        digest = hashlib.sha256(key).digest()
        return self.backends[int.from_bytes(digest[:4], "big") % len(self.backends)]
