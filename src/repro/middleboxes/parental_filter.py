"""A parental/content filter (Table 1 row: Parental Filter; §4.2 use case).

Permissions: read request headers only.  The paper notes filters need
full URLs (only 5 % of the IWF blacklist is whole domains), which is
exactly what read access to the request-header context provides.

The filter cannot silently drop records (it has no write access); per the
paper, "the filter drops non-compliant connections" — modelled by the
``on_block`` callback, which the hosting relay uses to tear the transport
down, plus a ``blocked`` flag the harness can poll.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Set

from repro.http.messages import HttpParser
from repro.mctls.contexts import Permission
from repro.middleboxes.base import HttpMiddleboxApp, PermissionSpec


class ParentalFilter(HttpMiddleboxApp):
    DISPLAY_NAME = "Parental Filter"
    PERMISSIONS = PermissionSpec(request_headers=Permission.READ)

    def __init__(
        self,
        name,
        config,
        blacklist: Iterable[str] = (),
        on_block: Optional[Callable[[str], None]] = None,
    ):
        super().__init__(name, config)
        self.blacklist: Set[str] = {entry.lower() for entry in blacklist}
        self.on_block = on_block
        self._parser = HttpParser("request")
        self.blocked = False
        self.blocked_urls: List[str] = []
        self.checked = 0

    def observe_request_headers(self, payload: bytes) -> None:
        for request in self._parser.feed(payload):
            host = (request.get_header("Host") or "").lower()
            url = f"{host}{request.target.lower()}"
            self.checked += 1
            if self._matches(host, url):
                self.blocked = True
                self.blocked_urls.append(url)
                if self.on_block is not None:
                    self.on_block(url)

    def _matches(self, host: str, url: str) -> bool:
        for entry in self.blacklist:
            if "/" in entry:
                if url.startswith(entry):  # full-URL entry
                    return True
            elif host == entry or host.endswith("." + entry):  # domain entry
                return True
        return False
