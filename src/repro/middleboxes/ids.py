"""An intrusion detection system (Table 1 row: IDS; §4.2 corporate firewall).

Permissions: read-only on all four contexts — the IDS can inspect
everything but modify nothing, and no longer needs to impersonate servers
with a custom root certificate.

Signature matching is byte-pattern based with a small carry-over window
so patterns spanning record boundaries are still caught.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from repro.mctls.contexts import Permission
from repro.middleboxes.base import HttpMiddleboxApp, PermissionSpec

DEFAULT_SIGNATURES = (
    b"/etc/passwd",
    b"<script>alert",
    b"' OR 1=1",
    b"cmd.exe",
    b"DROP TABLE",
)


@dataclass
class IdsAlert:
    signature: bytes
    context_id: int
    offset: int


class IntrusionDetectionSystem(HttpMiddleboxApp):
    DISPLAY_NAME = "IDS"
    PERMISSIONS = PermissionSpec(
        request_headers=Permission.READ,
        request_body=Permission.READ,
        response_headers=Permission.READ,
        response_body=Permission.READ,
    )

    def __init__(self, name, config, signatures: Sequence[bytes] = DEFAULT_SIGNATURES):
        super().__init__(name, config)
        self.signatures = tuple(signatures)
        self._window = max((len(s) for s in self.signatures), default=1) - 1
        self._carry = {1: b"", 2: b"", 3: b"", 4: b""}
        self._scanned = {1: 0, 2: 0, 3: 0, 4: 0}
        self.alerts: List[IdsAlert] = []
        self.bytes_scanned = 0

    def _scan(self, context_id: int, payload: bytes) -> None:
        window = self._carry.get(context_id, b"")
        haystack = window + payload
        base = self._scanned.get(context_id, 0) - len(window)
        for signature in self.signatures:
            start = 0
            while True:
                index = haystack.find(signature, start)
                if index < 0:
                    break
                # Matches entirely inside the carried window were already
                # reported by the previous scan.
                if index + len(signature) > len(window):
                    self.alerts.append(
                        IdsAlert(
                            signature=signature,
                            context_id=context_id,
                            offset=base + index,
                        )
                    )
                start = index + 1
        self._carry[context_id] = haystack[-self._window :] if self._window else b""
        self._scanned[context_id] = self._scanned.get(context_id, 0) + len(payload)
        self.bytes_scanned += len(payload)

    def observe_request_headers(self, payload: bytes) -> None:
        self._scan(1, payload)

    def observe_request_body(self, payload: bytes) -> None:
        self._scan(2, payload)

    def observe_response_headers(self, payload: bytes) -> None:
        self._scan(3, payload)

    def observe_response_body(self, payload: bytes) -> None:
        self._scan(4, payload)

    @property
    def alarmed(self) -> bool:
        return bool(self.alerts)
