"""Application-layer middleboxes (Table 1 of the paper).

Each module implements one of the in-path services the paper motivates,
as an HTTP-aware application on top of :class:`~repro.mctls.McTLSMiddlebox`
using the 4-Context strategy, declaring exactly the least-privilege
permission set Table 1 assigns it:

=================  ============  ===========  =============  =============
middlebox          req headers   req body     resp headers   resp body
=================  ============  ===========  =============  =============
Cache              read          —            read/write     read/write
Compression        —             —            read/write     read/write
Load balancer      read          —            —              —
IDS                read          read         read           read
Parental filter    read          —            —              —
Tracker blocker    read/write    —            read/write     —
Packet pacer       —             —            —              read
WAN optimizer      read          read         read           read
=================  ============  ===========  =============  =============

No middlebox needs read/write access to all of the data — the table's
caption, and the reason contexts exist.
"""

from repro.middleboxes.base import HttpMiddleboxApp, PermissionSpec
from repro.middleboxes.cache import CacheProxy
from repro.middleboxes.compression import CompressionProxy
from repro.middleboxes.ids import IntrusionDetectionSystem
from repro.middleboxes.load_balancer import LoadBalancer
from repro.middleboxes.pacer import PacketPacer
from repro.middleboxes.parental_filter import ParentalFilter
from repro.middleboxes.tracker_blocker import TrackerBlocker
from repro.middleboxes.wan_optimizer import WanOptimizer

ALL_MIDDLEBOX_APPS = (
    CacheProxy,
    CompressionProxy,
    LoadBalancer,
    IntrusionDetectionSystem,
    ParentalFilter,
    TrackerBlocker,
    PacketPacer,
    WanOptimizer,
)

__all__ = [
    "ALL_MIDDLEBOX_APPS",
    "CacheProxy",
    "CompressionProxy",
    "HttpMiddleboxApp",
    "IntrusionDetectionSystem",
    "LoadBalancer",
    "PacketPacer",
    "ParentalFilter",
    "PermissionSpec",
    "TrackerBlocker",
    "WanOptimizer",
]
