"""Base class for HTTP-aware middlebox applications.

An app subclasses :class:`HttpMiddleboxApp`, declares its Table 1
permission row as a :class:`PermissionSpec`, and overrides the piece
hooks it needs (``transform_response_body``, ``observe_request_headers``,
…).  The base class wires those hooks into an
:class:`~repro.mctls.McTLSMiddlebox` using the 4-Context strategy's
context ids, and provides the context definitions a client should put in
its topology to grant exactly the app's declared permissions.

Transform hooks receive one record payload and return the payload to
forward; returning ``b""`` withholds bytes (a buffering transform can
re-emit them later in a subsequent record — record *counts* per context
are always preserved, as the record protocol requires).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.http.strategies import (
    CTX_REQUEST_BODY,
    CTX_REQUEST_HEADERS,
    CTX_RESPONSE_BODY,
    CTX_RESPONSE_HEADERS,
    FOUR_CONTEXT,
)
from repro.mctls import McTLSMiddlebox
from repro.mctls.contexts import ContextDefinition, Permission
from repro.tls.connection import TLSConfig


@dataclass(frozen=True)
class PermissionSpec:
    """One row of Table 1."""

    request_headers: Permission = Permission.NONE
    request_body: Permission = Permission.NONE
    response_headers: Permission = Permission.NONE
    response_body: Permission = Permission.NONE

    def as_context_map(self) -> Dict[int, Permission]:
        return {
            CTX_REQUEST_HEADERS: self.request_headers,
            CTX_REQUEST_BODY: self.request_body,
            CTX_RESPONSE_HEADERS: self.response_headers,
            CTX_RESPONSE_BODY: self.response_body,
        }

    def row(self) -> Dict[str, Permission]:
        return {
            "request_headers": self.request_headers,
            "request_body": self.request_body,
            "response_headers": self.response_headers,
            "response_body": self.response_body,
        }


class HttpMiddleboxApp:
    """An HTTP middlebox application over the 4-Context strategy."""

    #: Table 1 row; subclasses must override.
    PERMISSIONS = PermissionSpec()
    #: Human-readable name matching Table 1.
    DISPLAY_NAME = "generic"

    def __init__(self, name: str, config: TLSConfig):
        self.name = name
        self.middlebox = McTLSMiddlebox(
            name,
            config,
            transformer=self._dispatch_transform,
            observer=self._dispatch_observe,
        )

    # -- topology helpers ----------------------------------------------------

    @classmethod
    def context_definitions(cls, mbox_id: int) -> List[ContextDefinition]:
        """The 4-Context definitions granting this app its Table 1 row."""
        permission_map = cls.PERMISSIONS.as_context_map()
        contexts = []
        for ctx_id, purpose in sorted(FOUR_CONTEXT.context_purposes.items()):
            permission = permission_map.get(ctx_id, Permission.NONE)
            grants = {mbox_id: permission} if permission is not Permission.NONE else {}
            contexts.append(
                ContextDefinition(context_id=ctx_id, purpose=purpose, permissions=grants)
            )
        return contexts

    # -- hook dispatch -----------------------------------------------------------

    def _dispatch_transform(self, direction: str, context_id: int, payload: bytes) -> bytes:
        if context_id == CTX_REQUEST_HEADERS:
            return self.transform_request_headers(payload)
        if context_id == CTX_REQUEST_BODY:
            return self.transform_request_body(payload)
        if context_id == CTX_RESPONSE_HEADERS:
            return self.transform_response_headers(payload)
        if context_id == CTX_RESPONSE_BODY:
            return self.transform_response_body(payload)
        return payload

    def _dispatch_observe(self, direction: str, context_id: int, payload: bytes) -> None:
        if context_id == CTX_REQUEST_HEADERS:
            self.observe_request_headers(payload)
        elif context_id == CTX_REQUEST_BODY:
            self.observe_request_body(payload)
        elif context_id == CTX_RESPONSE_HEADERS:
            self.observe_response_headers(payload)
        elif context_id == CTX_RESPONSE_BODY:
            self.observe_response_body(payload)

    # -- overridable hooks ----------------------------------------------------------

    def transform_request_headers(self, payload: bytes) -> bytes:
        return payload

    def transform_request_body(self, payload: bytes) -> bytes:
        return payload

    def transform_response_headers(self, payload: bytes) -> bytes:
        return payload

    def transform_response_body(self, payload: bytes) -> bytes:
        return payload

    def observe_request_headers(self, payload: bytes) -> None:
        pass

    def observe_request_body(self, payload: bytes) -> None:
        pass

    def observe_response_headers(self, payload: bytes) -> None:
        pass

    def observe_response_body(self, payload: bytes) -> None:
        pass
