"""A data-compression proxy (Table 1 row: Compression; §4.2 use case).

Permissions: read/write response headers and body — the Chrome Data
Compression Proxy example from the paper, finally able to operate on
HTTPS traffic because the endpoints granted it exactly the response
contexts.

**The record-count constraint.** An mcTLS writer may rewrite records but
can neither inject nor drop them (sequence numbers are global, and
records in contexts the middlebox cannot read must be forwarded with
their original sender-sequenced MACs).  A buffering rewrite therefore
re-emits everything it withheld inside a *single* later record, which
caps how much it may buffer at one record's payload.  This proxy checks
``Content-Length`` up front: small responses are buffered, compressed,
and re-emitted with rewritten headers; responses too large for one
record pass through untouched (counted in ``responses_passed_through``).
Real deployments would negotiate a chunked content-encoding with the
client instead; the paper does not address the constraint.
"""

from __future__ import annotations

import zlib

from repro.http.messages import CRLF, HEADER_END, HttpResponse, _parse_headers
from repro.mctls.contexts import Permission
from repro.middleboxes.base import HttpMiddleboxApp, PermissionSpec
from repro.tls.record import MAX_PLAINTEXT

MIN_SIZE_TO_COMPRESS = 64  # tiny bodies only grow
# The rewritten response (headers + compressed body) must fit one record.
MAX_BUFFERABLE = MAX_PLAINTEXT - 2048


class CompressionProxy(HttpMiddleboxApp):
    DISPLAY_NAME = "Compression"
    PERMISSIONS = PermissionSpec(
        response_headers=Permission.WRITE,
        response_body=Permission.WRITE,
    )

    def __init__(self, name, config, max_bufferable: int = MAX_BUFFERABLE):
        super().__init__(name, config)
        self.max_bufferable = max_bufferable
        # Per-response state: None (between responses), "buffering", or
        # "passthrough".
        self._state = None
        self._held_headers = b""
        self._held_body = bytearray()
        self._body_expected = 0
        self.bytes_in = 0
        self.bytes_out = 0
        self.responses_compressed = 0
        self.responses_passed_through = 0

    # -- response headers --------------------------------------------------

    def transform_response_headers(self, payload: bytes) -> bytes:
        if self._state is not None:
            # Headers while mid-response: protocol confusion; pass through.
            return payload
        if not payload.endswith(HEADER_END):
            # Split or oversized header block — don't interfere.
            self.responses_passed_through += 1
            return payload
        content_length = self._content_length(payload)
        if content_length is None or content_length == 0:
            return payload  # nothing to compress
        if (
            content_length < MIN_SIZE_TO_COMPRESS
            or content_length > self.max_bufferable
            or b"content-encoding" in payload.lower()
        ):
            self._state = "passthrough"
            self._body_expected = content_length
            self.responses_passed_through += 1
            return payload
        self._state = "buffering"
        self._held_headers = payload
        self._body_expected = content_length
        self._held_body.clear()
        return b""

    @staticmethod
    def _content_length(header_block: bytes):
        head = header_block[: -len(HEADER_END)]
        for line in head.split(CRLF)[1:]:
            name, _, value = line.partition(b":")
            if name.strip().lower() == b"content-length":
                try:
                    return int(value.strip())
                except ValueError:
                    return None
        return None

    # -- response body ---------------------------------------------------------

    def transform_response_body(self, payload: bytes) -> bytes:
        if self._state == "passthrough":
            self._body_expected -= len(payload)
            if self._body_expected <= 0:
                self._state = None
            return payload
        if self._state != "buffering":
            return payload  # body without observed headers; don't touch
        self._held_body += payload
        if len(self._held_body) < self._body_expected:
            return b""  # keep holding
        return self._finish_response()

    def _finish_response(self) -> bytes:
        body = bytes(self._held_body[: self._body_expected])
        trailing = bytes(self._held_body[self._body_expected :])
        self._state = None
        self._held_body.clear()
        self.bytes_in += len(body)

        compressed = zlib.compress(body, 6)
        if len(compressed) < len(body):
            response = self._parse_held(body)
            response.body = compressed
            response.headers = [
                (k, v) for k, v in response.headers if k.lower() != "content-length"
            ]
            response.headers.append(("Content-Length", str(len(compressed))))
            response.headers.append(("Content-Encoding", "deflate"))
            self.responses_compressed += 1
            out = response.encode()
        else:
            out = self._held_headers + body
        self.bytes_out += len(out) - len(self._held_headers)
        self._held_headers = b""
        # Trailing bytes belong to a pipelined next response's body piece;
        # with the 4-context strategy pieces are per-message, so this is
        # empty in practice — passed through defensively if not.
        return out + trailing

    def _parse_held(self, body: bytes) -> HttpResponse:
        head = self._held_headers[: -len(HEADER_END)]
        status_line, _, header_block = head.partition(CRLF)
        parts = status_line.split(b" ", 2)
        return HttpResponse(
            version=parts[0].decode("ascii"),
            status=int(parts[1]),
            reason=parts[2].decode("ascii") if len(parts) > 2 else "",
            headers=_parse_headers(header_block),
            body=body,
        )

    @property
    def savings_ratio(self) -> float:
        return 1 - self.bytes_out / self.bytes_in if self.bytes_in else 0.0
