"""Interface drift check: every stack satisfies the ``repro.core`` protocols.

CI runs this as ``python -m repro.tools.check_interface``.  It builds one
instance of every endpoint connection and every relay across the six
protocol modes (with throwaway 512-bit material, so it is cheap) and
asserts each satisfies the runtime-checkable
:class:`repro.core.Connection` / :class:`repro.core.RelayProcessor`
protocol.  A stack that drops or renames part of the formal surface
fails here immediately, before any behavioural test runs.
"""

from __future__ import annotations

from repro.core import Connection, RelayProcessor
from repro.crypto.dh import GROUP_TEST_512
from repro.experiments.harness import Mode, TestBed


def check_interfaces(bed: TestBed | None = None) -> list:
    """Return ``(label, object)`` pairs checked; raises on any drift."""
    if bed is None:
        bed = TestBed(key_bits=512, dh_group=GROUP_TEST_512)
    checked = []
    for mode in Mode:
        client, server = bed.make_endpoints(mode)
        for side, endpoint in (("client", client), ("server", server)):
            label = f"{mode.value} {side} ({type(endpoint).__name__})"
            if not isinstance(endpoint, Connection):
                raise TypeError(f"{label} does not satisfy repro.core.Connection")
            checked.append((label, endpoint))
        for relay in bed.make_relays(mode, 1):
            label = f"{mode.value} relay ({type(relay).__name__})"
            if not isinstance(relay, RelayProcessor):
                raise TypeError(
                    f"{label} does not satisfy repro.core.RelayProcessor"
                )
            # A relay must not masquerade as an endpoint: the runtimes
            # pick the driving loop by which protocol an object fulfils.
            if isinstance(relay, Connection):
                raise TypeError(f"{label} also satisfies Connection")
            checked.append((label, relay))
    return checked


def main() -> int:
    checked = check_interfaces()
    for label, _ in checked:
        print(f"ok: {label}")
    print(f"{len(checked)} objects satisfy the repro.core protocols")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
