"""Command-line tools mirroring the paper's tooling (§5.4)."""
