"""``s_time`` — handshake throughput measurement, mcTLS-style.

The paper's authors "modified the OpenSSL s_time benchmarking tool to
support mcTLS... less than 30 new lines of C code" (§5.4).  This is the
equivalent for our stack: run handshakes back to back for a wall-clock
budget and report connections/sec, for any protocol mode.

Two drivers:

* the default runs sequential handshakes over the in-memory simulated
  network (one chain per connection, like ``s_time`` proper);
* ``--async`` starts a real serving chain on loopback (``repro.aio``
  servers) and drives it with the concurrent load generator, reporting
  sustained connections/sec plus handshake-latency percentiles.

Usage::

    python -m repro.tools.s_time --mode mctls --contexts 4 --middleboxes 1
    python -m repro.tools.s_time --mode split --seconds 5 --key-bits 1024
    python -m repro.tools.s_time --mode mctls --async --connections 200 \\
        --concurrency 50 --resume-ratio 0.5
    python -m repro.tools.s_time --mode mctls --seconds 1 \\
        --stats-json stats.json   # instrumentation-plane counter snapshot
"""

from __future__ import annotations

import argparse
import asyncio
import json
import time
from typing import Optional

from repro.core import Instruments
from repro.crypto.dh import GROUP_TEST_512
from repro.experiments.harness import Mode, TestBed
from repro.mctls.session import KeyTransport
from repro.transport import Chain

MODE_NAMES = {
    "mctls": Mode.MCTLS,
    "mctls-ckd": Mode.MCTLS_CKD,
    "mdtls": Mode.MDTLS,
    "split": Mode.SPLIT_TLS,
    "e2e": Mode.E2E_TLS,
    "plain": Mode.NO_ENCRYPT,
}


def _make_bed(key_bits: int, key_transport: str) -> TestBed:
    kwargs = dict(
        key_bits=key_bits,
        key_transport=(
            KeyTransport.RSA if key_transport == "rsa" else KeyTransport.DHE
        ),
    )
    if key_bits <= 512:
        kwargs["dh_group"] = GROUP_TEST_512
    return TestBed(**kwargs)


def run_s_time(
    mode: Mode,
    seconds: float = 3.0,
    n_contexts: int = 1,
    n_middleboxes: int = 1,
    key_bits: int = 1024,
    key_transport: str = "rsa",
    instruments: Optional[Instruments] = None,
) -> dict:
    """Run handshakes for ~``seconds``; returns measurement statistics.

    ``instruments`` (optional) is attached to every protocol object of
    every iteration, so protocol-level counters (handshake messages, MAC
    failures, per-context bytes) aggregate over the whole run and appear
    under ``"instruments"`` in the returned statistics.
    """
    bed = _make_bed(key_bits, key_transport)
    topology = (
        bed.topology(n_middleboxes, n_contexts=n_contexts)
        if mode in (Mode.MCTLS, Mode.MCTLS_CKD, Mode.MDTLS)
        else None
    )
    count = 0
    start = time.perf_counter()
    deadline = start + seconds
    while time.perf_counter() < deadline:
        client, server = bed.make_endpoints(mode, topology=topology)
        relays = bed.make_relays(mode, n_middleboxes)
        if instruments is not None:
            for node in (client, server, *relays):
                node.instruments = instruments
        chain = Chain(client, relays, server)
        client.start_handshake()
        chain.pump()
        if not client.handshake_complete:
            raise RuntimeError("handshake failed")
        count += 1
    elapsed = time.perf_counter() - start
    stats = {
        "mode": mode.value,
        "contexts": n_contexts,
        "middleboxes": n_middleboxes,
        "key_bits": key_bits,
        "connections": count,
        "seconds": elapsed,
        "connections_per_second": count / elapsed,
    }
    if instruments is not None:
        stats["instruments"] = instruments.snapshot()
    return stats


def run_s_time_async(
    mode: Mode,
    connections: int = 100,
    concurrency: int = 50,
    rate: float = None,
    resume_ratio: float = 0.0,
    n_contexts: int = 1,
    n_middleboxes: int = 1,
    key_bits: int = 1024,
    key_transport: str = "rsa",
    instruments: Optional[Instruments] = None,
) -> dict:
    """Drive the ``repro.aio`` load generator against a real loopback
    serving chain; returns the load report plus server stats (including
    the chain-wide instrumentation snapshot when ``instruments`` is
    given)."""
    from repro.experiments.serving import run_async_load

    bed = _make_bed(key_bits, key_transport)
    report = asyncio.run(
        run_async_load(
            bed,
            mode,
            n_middleboxes,
            connections=connections,
            concurrency=concurrency,
            rate=rate,
            resume_ratio=resume_ratio,
            n_contexts=n_contexts,
            instruments=instruments,
        )
    )
    report["key_bits"] = key_bits
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="s_time", description="Measure full-chain handshakes per second."
    )
    parser.add_argument("--mode", choices=sorted(MODE_NAMES), default="mctls")
    parser.add_argument("--seconds", type=float, default=3.0)
    parser.add_argument("--contexts", type=int, default=1)
    parser.add_argument("--middleboxes", type=int, default=1)
    parser.add_argument("--key-bits", type=int, default=1024)
    parser.add_argument(
        "--key-transport", choices=["rsa", "dhe"], default="rsa",
        help="MiddleboxKeyMaterial protection (rsa = the paper's prototype)",
    )
    parser.add_argument(
        "--async", dest="use_async", action="store_true",
        help="serve over real loopback sockets (repro.aio) and drive the "
        "concurrent load generator instead of sequential in-memory chains",
    )
    parser.add_argument(
        "--connections", type=int, default=100,
        help="(--async) total sessions to run",
    )
    parser.add_argument(
        "--concurrency", type=int, default=50,
        help="(--async) sessions kept in flight",
    )
    parser.add_argument(
        "--rate", type=float, default=None,
        help="(--async) open-loop launch rate in connections/sec "
        "(default: closed loop)",
    )
    parser.add_argument(
        "--resume-ratio", type=float, default=0.0,
        help="(--async) fraction of sessions offered as resumptions",
    )
    parser.add_argument(
        "--stats-json", metavar="PATH", default=None,
        help="enable the instrumentation plane and write the full report "
        "(including the counter snapshot) as JSON to PATH",
    )
    args = parser.parse_args(argv)

    instruments = Instruments() if args.stats_json else None

    if args.use_async:
        report = run_s_time_async(
            MODE_NAMES[args.mode],
            connections=args.connections,
            concurrency=args.concurrency,
            rate=args.rate,
            resume_ratio=args.resume_ratio,
            n_contexts=args.contexts,
            n_middleboxes=args.middleboxes,
            key_bits=args.key_bits,
            key_transport=args.key_transport,
            instruments=instruments,
        )
        if args.stats_json:
            with open(args.stats_json, "w") as fh:
                json.dump(report, fh, indent=2, sort_keys=True)
        load = report["load"]
        lat = load["handshake_latency_s"]
        print(
            f"{load['completed']} connections in {load['duration_s']:.2f}s; "
            f"{load['conn_per_s']:.1f} connections/sec "
            f"({report['mode']}, {report['middleboxes']} mbox, "
            f"{args.key_bits}-bit keys, concurrency {load['concurrency']}, "
            f"{load['resumed']} resumed, {load['failed']} failed); "
            f"handshake p50={lat['p50']:.4f}s p95={lat['p95']:.4f}s "
            f"p99={lat['p99']:.4f}s"
        )
        return 1 if load["failed"] else 0

    stats = run_s_time(
        MODE_NAMES[args.mode],
        seconds=args.seconds,
        n_contexts=args.contexts,
        n_middleboxes=args.middleboxes,
        key_bits=args.key_bits,
        key_transport=args.key_transport,
        instruments=instruments,
    )
    if args.stats_json:
        with open(args.stats_json, "w") as fh:
            json.dump(stats, fh, indent=2, sort_keys=True)
    print(
        f"{stats['connections']} connections in {stats['seconds']:.2f}s; "
        f"{stats['connections_per_second']:.1f} connections/sec "
        f"({stats['mode']}, {stats['contexts']} ctx, "
        f"{stats['middleboxes']} mbox, {stats['key_bits']}-bit keys)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
