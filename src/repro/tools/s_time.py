"""``s_time`` — handshake throughput measurement, mcTLS-style.

The paper's authors "modified the OpenSSL s_time benchmarking tool to
support mcTLS... less than 30 new lines of C code" (§5.4).  This is the
equivalent for our stack: run handshakes back to back for a wall-clock
budget and report connections/sec, for any protocol mode.

Usage::

    python -m repro.tools.s_time --mode mctls --contexts 4 --middleboxes 1
    python -m repro.tools.s_time --mode split --seconds 5 --key-bits 1024
"""

from __future__ import annotations

import argparse
import time

from repro.experiments.harness import Mode, TestBed
from repro.mctls.session import KeyTransport
from repro.transport import Chain

MODE_NAMES = {
    "mctls": Mode.MCTLS,
    "mctls-ckd": Mode.MCTLS_CKD,
    "split": Mode.SPLIT_TLS,
    "e2e": Mode.E2E_TLS,
    "plain": Mode.NO_ENCRYPT,
}


def run_s_time(
    mode: Mode,
    seconds: float = 3.0,
    n_contexts: int = 1,
    n_middleboxes: int = 1,
    key_bits: int = 1024,
    key_transport: str = "rsa",
) -> dict:
    """Run handshakes for ~``seconds``; returns measurement statistics."""
    bed = TestBed(
        key_bits=key_bits,
        key_transport=(
            KeyTransport.RSA if key_transport == "rsa" else KeyTransport.DHE
        ),
    )
    topology = (
        bed.topology(n_middleboxes, n_contexts=n_contexts)
        if mode in (Mode.MCTLS, Mode.MCTLS_CKD)
        else None
    )
    count = 0
    start = time.perf_counter()
    deadline = start + seconds
    while time.perf_counter() < deadline:
        client, server = bed.make_endpoints(mode, topology=topology)
        relays = bed.make_relays(mode, n_middleboxes)
        chain = Chain(client, relays, server)
        client.start_handshake()
        chain.pump()
        if not client.handshake_complete:
            raise RuntimeError("handshake failed")
        count += 1
    elapsed = time.perf_counter() - start
    return {
        "mode": mode.value,
        "contexts": n_contexts,
        "middleboxes": n_middleboxes,
        "key_bits": key_bits,
        "connections": count,
        "seconds": elapsed,
        "connections_per_second": count / elapsed,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="s_time", description="Measure full-chain handshakes per second."
    )
    parser.add_argument("--mode", choices=sorted(MODE_NAMES), default="mctls")
    parser.add_argument("--seconds", type=float, default=3.0)
    parser.add_argument("--contexts", type=int, default=1)
    parser.add_argument("--middleboxes", type=int, default=1)
    parser.add_argument("--key-bits", type=int, default=1024)
    parser.add_argument(
        "--key-transport", choices=["rsa", "dhe"], default="rsa",
        help="MiddleboxKeyMaterial protection (rsa = the paper's prototype)",
    )
    args = parser.parse_args(argv)

    stats = run_s_time(
        MODE_NAMES[args.mode],
        seconds=args.seconds,
        n_contexts=args.contexts,
        n_middleboxes=args.middleboxes,
        key_bits=args.key_bits,
        key_transport=args.key_transport,
    )
    print(
        f"{stats['connections']} connections in {stats['seconds']:.2f}s; "
        f"{stats['connections_per_second']:.1f} connections/sec "
        f"({stats['mode']}, {stats['contexts']} ctx, "
        f"{stats['middleboxes']} mbox, {stats['key_bits']}-bit keys)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
