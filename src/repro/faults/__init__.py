"""Deterministic fault injection for mcTLS (§3.4 detection guarantees).

``repro.faults`` turns the paper's Table 1 into an executable
specification:

* :mod:`repro.faults.mutations` — seeded record- and handshake-level
  mutators (bit-flips targeting the payload and each MAC slot,
  truncation, deletion, replay, reordering, context splicing, version
  confusion; handshake message drop / field mutation / middlebox-list
  tampering);
* :mod:`repro.faults.attacker` — on-path adversaries: the key-less
  :class:`TamperProxy` (plugs into :class:`repro.transport.Chain` and,
  as an :class:`AttackerNode`, into ``repro.netsim`` paths via
  ``build_path(..., attacker=...)``) and the key-abusing
  :class:`MaliciousReader`;
* :mod:`repro.faults.matrix` — the property runner that executes every
  (role × permission × mutation) cell and asserts the right party
  detects tampering via the right MAC.
"""

from repro.faults.attacker import (
    AttackerNode,
    MaliciousReader,
    TamperPlan,
    TamperProxy,
    forge_reader_record,
)
from repro.faults.matrix import (
    SEED,
    CellResult,
    CellSpec,
    Expected,
    Outcome,
    all_cells,
    expected_matrix,
    failure_info,
    run_cell,
    run_matrix,
)
from repro.faults.mutations import (
    ContextIdSwap,
    DeleteRecord,
    DropHandshakeMessage,
    EscalatePermission,
    FlipHandshakeBit,
    FlipMacBit,
    FlipPayloadBit,
    HandshakeMutator,
    RecordMutator,
    RecordView,
    ReorderRecords,
    ReplayRecord,
    TruncateRecord,
    VersionConfusion,
    parse_records,
    standard_record_mutators,
)

__all__ = [
    "AttackerNode",
    "CellResult",
    "CellSpec",
    "ContextIdSwap",
    "DeleteRecord",
    "DropHandshakeMessage",
    "EscalatePermission",
    "Expected",
    "FlipHandshakeBit",
    "FlipMacBit",
    "FlipPayloadBit",
    "HandshakeMutator",
    "MaliciousReader",
    "Outcome",
    "RecordMutator",
    "RecordView",
    "ReorderRecords",
    "ReplayRecord",
    "SEED",
    "TamperPlan",
    "TamperProxy",
    "TruncateRecord",
    "VersionConfusion",
    "all_cells",
    "expected_matrix",
    "failure_info",
    "forge_reader_record",
    "parse_records",
    "run_cell",
    "run_matrix",
    "standard_record_mutators",
]
