"""Executable Table 1: the (role × permission × mutation) fault matrix.

Each :class:`CellSpec` is one cell of the paper's §3.4 detection table —
an attacker role (third party on the wire, a reader middlebox, a writer
middlebox, or a handshake-time tamperer), a detecting party (the
receiving endpoint, a reader middlebox, a writer middlebox, or the
handshake itself), and a mutation.  :func:`run_cell` builds a fresh
mcTLS session with exactly that topology, injects the mutation
mid-session through the attacker machinery in
:mod:`repro.faults.attacker`, and classifies what happened:

* ``ILLEGAL`` — a MAC verification failed; the result records *which*
  MAC (``endpoints`` / ``writers`` / ``readers``) and *where*
  (``endpoint`` / ``middlebox``), which is exactly what Table 1
  specifies per cell;
* ``LEGAL`` — the record was delivered and the endpoint flagged it as
  legally modified (``MAC_endpoints`` mismatch, ``MAC_writers`` valid);
* ``ACCEPTED`` — delivered with no flag (the tampering was invisible to
  this party — e.g. endpoints never check ``MAC_readers``);
* ``MALFORMED`` — rejected before any MAC ran (framing/version);
* ``HANDSHAKE_FAILED`` — the handshake never completed.

The whole matrix is deterministic for a fixed seed: mutation positions
come from ``random.Random(seed)`` and payload lengths are fixed, so two
consecutive :func:`run_matrix` calls must produce identical outcomes
(asserted by ``tests/test_fault_matrix.py``).

Sessions use 512-bit RSA/DH test parameters and the SHA-CTR stream
suite.  The stream suite matters: it preserves byte positions, so the
bit-flip mutators can address the payload and each individual MAC slot
inside the ciphertext.  (CBC would garble whole blocks and every flip
would collapse into the same padding/decryption failure.)
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Tuple

from repro.crypto.certs import CertificateAuthority, Identity
from repro.crypto.dh import GROUP_TEST_512
from repro.faults.attacker import MaliciousReader, TamperPlan, TamperProxy
from repro.faults.mutations import (
    DropHandshakeMessage,
    EscalatePermission,
    FlipFieldRegionBit,
    FlipHandshakeBit,
    HandshakeMutator,
    standard_record_mutators,
)
from repro.mctls import (
    ContextDefinition,
    McTLSClient,
    McTLSMiddlebox,
    McTLSServer,
    MiddleboxInfo,
    Permission,
    SessionTopology,
)
from repro.faults.mutations import HandshakeMutator as _HandshakeMutatorBase
from repro.mctls import keys as mk
from repro.mctls import record as mrec
from repro.mctls.session import McTLSApplicationData
from repro.mdtls import MdTLSClient, MdTLSMiddlebox, MdTLSServer
from repro.mdtls import warrants as mdw
from repro.tls import messages as tls_msgs
from repro.tls.ciphersuites import SUITE_DHE_RSA_SHACTR_SHA256
from repro.tls.connection import TLSConfig, TLSError
from repro.transport import Chain

SEED = 2015  # any fixed value; tests assert run-to-run stability, not the value

PAYLOAD_1 = b"mcTLS fault harness payload number one"
PAYLOAD_2 = b"mcTLS fault harness payload number two"
PAYLOAD_3 = b"mcTLS fault harness payload number three"

KEY_BITS = 512  # test-sized keys; structure identical to production sizes


class Outcome(Enum):
    ILLEGAL = "illegal"  # a MAC check failed
    LEGAL = "legal"  # delivered, flagged as legally modified
    ACCEPTED = "accepted"  # delivered, no flag
    MALFORMED = "malformed"  # rejected before any MAC ran
    HANDSHAKE_FAILED = "handshake-failed"


@dataclass(frozen=True)
class CellSpec:
    """One cell: who attacks, who should notice, with which mutation."""

    attacker: str  # "third-party" | "reader" | "writer" | "handshake" | "warrant"
    detector: str  # "endpoint" | "reader-mbox" | "writer-mbox" | "handshake"
    #                 (warrant rows: "client" | "server" | "middlebox")
    mutation: str  # mutator name, or "forge" / "transform"


@dataclass(frozen=True)
class CellResult:
    outcome: Outcome
    mac: Optional[str] = None  # which MAC detected it, if any
    detected_by: Optional[str] = None  # "endpoint" | "middlebox" (warrant
    #                                    rows: "client" | "server" | "middlebox")
    delivered: Tuple[bytes, ...] = ()
    legally_modified: bool = False
    reason: Optional[str] = None  # warrant rows: "forged"/"expired"/"widened"


@dataclass(frozen=True)
class Expected:
    """What Table 1 says should happen in a cell."""

    outcome: Outcome
    mac: Optional[str] = None
    detected_by: Optional[str] = None
    reason: Optional[str] = None

    def matches(self, result: CellResult) -> bool:
        if result.outcome is not self.outcome:
            return False
        if self.mac is not None and result.mac != self.mac:
            return False
        if self.detected_by is not None and result.detected_by != self.detected_by:
            return False
        if self.reason is not None and result.reason != self.reason:
            return False
        return True


def failure_info(exc: BaseException):
    """Walk the exception cause chain for the detection outcome.

    Prefers a :class:`~repro.mctls.record.MacVerificationError` (which
    names the MAC and the party); falls back to the first exception that
    knows ``where``, then to ``exc`` itself.
    """
    best = None
    node: Optional[BaseException] = exc
    seen = set()
    while node is not None and id(node) not in seen:
        seen.add(id(node))
        if isinstance(node, mrec.MacVerificationError):
            return node
        if best is None and getattr(node, "where", None) is not None:
            best = node
        node = node.__cause__ or node.__context__
    return best if best is not None else exc


# -- cached crypto material ---------------------------------------------------

_FIXTURE: Dict[str, object] = {}


def _fixture():
    """CA + server + two middlebox identities (key generation is the
    expensive part; every cell shares one set)."""
    if not _FIXTURE:
        ca = CertificateAuthority.create_root("Fault Harness CA", key_bits=KEY_BITS)
        _FIXTURE["ca"] = ca
        _FIXTURE["server"] = Identity.issued_by(ca, "server.example", key_bits=KEY_BITS)
        _FIXTURE["mboxes"] = [
            Identity.issued_by(ca, f"mbox{i}.example", key_bits=KEY_BITS)
            for i in (1, 2)
        ]
    return _FIXTURE["ca"], _FIXTURE["server"], _FIXTURE["mboxes"]


def _config(suite=None, **kwargs) -> TLSConfig:
    return TLSConfig(
        dh_group=GROUP_TEST_512,
        cipher_suites=(suite or SUITE_DHE_RSA_SHACTR_SHA256,),
        **kwargs,
    )


def _writer_transform(direction: str, context_id: int, payload: bytes):
    """The 'malicious' writer: a legal modification the endpoint flags."""
    if direction == mk.C2S and context_id == 1:
        return payload + b" [rewritten by writer]"
    return None


# -- per-field sub-context rows (compact framing) ------------------------------

# Field geometry over the shared payloads: "hdr" is granted to the
# (record-level WRITE) middlebox, "body" is not.  Rewrites must be
# length-preserving — the compact framing's field schemas describe a
# fixed record layout, and the MAC prefix binds the payload length.
_FIELD_HDR = (0, 8)
_FIELD_BODY = (8, 38)


def _field_schema():
    from repro.mctls.contexts import FieldDef, FieldSchema

    return FieldSchema(
        context_id=1,
        fields=(
            FieldDef("hdr", *_FIELD_HDR),
            FieldDef("body", _FIELD_BODY[0], 64),
        ),
        write_grants={"hdr": (1,)},
    )


def _field_rewrite(lo: int, hi: int):
    """A length-preserving in-place rewrite of payload bytes [lo, hi)."""

    def transform(direction: str, context_id: int, payload: bytes):
        if direction == mk.C2S and context_id == 1:
            mutated = bytearray(payload)
            for i in range(lo, min(hi, len(mutated))):
                mutated[i] ^= 0xFF
            return bytes(mutated)
        return None

    return transform


# -- warrant attackers (mdTLS delegation rows) --------------------------------

_DAY_MS = 86_400_000


class _RogueKeyClient(MdTLSClient):
    """Signs its warrants with a key that does not match its chain."""

    def __init__(self, *args, rogue_key=None, **kwargs):
        super().__init__(*args, **kwargs)
        self._rogue_key = rogue_key

    def _make_warrants(self, now_ms):
        return [w.sign(self._rogue_key) for w in super()._make_warrants(now_ms)]


class _ExpiredWarrantClient(MdTLSClient):
    """Issues warrants whose validity window closed a day ago (the
    verification clock stays honest — only issuance is skewed)."""

    def _make_warrants(self, now_ms):
        return super()._make_warrants(now_ms - _DAY_MS)


class _ExpiredWarrantServer(MdTLSServer):
    def _make_warrants(self, now_ms):
        return super()._make_warrants(now_ms - _DAY_MS)


class _WideningClient(MdTLSClient):
    """Re-grants WRITE everywhere, beyond the READ ceiling it proposed."""

    def _make_warrants(self, now_ms):
        warrants = super()._make_warrants(now_ms)
        for warrant in warrants:
            for ctx_id in self.topology.context_ids:
                warrant.grants[ctx_id] = Permission.WRITE
            warrant.sign(self.config.identity.key)
        return warrants


class _ColludingMiddlebox(MdTLSMiddlebox):
    """Stores its warrants without verifying them — the rows built on it
    prove detection does not depend on honest middleboxes."""

    def _on_warrant_issue(self, issue, issuer_role):
        own = next((w for w in issue.warrants if w.mbox_id == self.mbox_id), None)
        if own is not None:
            if issuer_role == mdw.ISSUER_CLIENT:
                self._client_warrant = own
            else:
                self._server_warrant = own
        self._maybe_install_keys()


class _FlipWarrantSignature(_HandshakeMutatorBase):
    """On-path bit-flip in the last byte of a passing ``WarrantIssue`` —
    the tail of the last warrant's signature, so the flight still decodes
    but the signature no longer verifies."""

    name = "warrant-flip"
    mutation_class = "warrant-tampering"

    def __init__(self):
        self._done = False

    def mutate_message(self, msg_type, body, rng):
        if self._done or msg_type != tls_msgs.WARRANT_ISSUE or not body:
            return None
        self._done = True
        mutated = bytearray(body)
        mutated[-1] ^= 0x01
        return [(msg_type, bytes(mutated))]


def _delegation_fixture():
    """The shared fixture plus client and rogue identities (mdTLS clients
    sign warrants, so the client is certified too)."""
    ca, server_identity, mbox_identities = _fixture()
    if "client" not in _FIXTURE:
        _FIXTURE["client"] = Identity.issued_by(ca, "client.example", key_bits=KEY_BITS)
        _FIXTURE["rogue"] = Identity.issued_by(ca, "rogue.example", key_bits=KEY_BITS)
    return ca, server_identity, mbox_identities, _FIXTURE["client"], _FIXTURE["rogue"]


def _build_delegation_session(spec: CellSpec, seed: int, suite=None):
    """Fresh mdTLS client / relays / server for one warrant cell.

    One READ middlebox on both contexts — READ is the ceiling the
    widening rows must not be able to exceed."""
    ca, server_identity, mbox_identities, client_identity, rogue = (
        _delegation_fixture()
    )
    mbox_identity = mbox_identities[0]
    topology = SessionTopology(
        middleboxes=[MiddleboxInfo(1, mbox_identity.name)],
        contexts=tuple(
            ContextDefinition(ctx_id, f"context-{ctx_id}", {1: Permission.READ})
            for ctx_id in (1, 2)
        ),
    )

    client_cls, client_kwargs = MdTLSClient, {}
    server_cls = MdTLSServer
    mbox_cls = MdTLSMiddlebox
    proxy_near_server = proxy_near_client = None

    key = (spec.detector, spec.mutation)
    if key == ("middlebox", "forged-signature"):
        client_cls, client_kwargs = _RogueKeyClient, {"rogue_key": rogue.key}
    elif key == ("middlebox", "expired-window"):
        client_cls = _ExpiredWarrantClient
    elif key == ("middlebox", "widened-scope"):
        client_cls = _WideningClient
    elif key == ("server", "forged-onpath"):
        proxy_near_server = TamperProxy(
            TamperPlan(
                seed=seed, handshake_mutator=_FlipWarrantSignature(), direction=mk.C2S
            )
        )
    elif key == ("server", "widened-scope"):
        client_cls, mbox_cls = _WideningClient, _ColludingMiddlebox
    elif key == ("client", "forged-onpath"):
        proxy_near_client = TamperProxy(
            TamperPlan(
                seed=seed, handshake_mutator=_FlipWarrantSignature(), direction=mk.S2C
            )
        )
    elif key == ("client", "expired-window"):
        server_cls, mbox_cls = _ExpiredWarrantServer, _ColludingMiddlebox
    else:
        raise KeyError(f"unknown warrant cell {spec}")

    client = client_cls(
        _config(
            suite=suite,
            identity=client_identity,
            trusted_roots=[ca.certificate],
            server_name=server_identity.name,
        ),
        topology=topology,
        **client_kwargs,
    )
    server = server_cls(
        _config(suite=suite, identity=server_identity, trusted_roots=[ca.certificate])
    )
    relays: List[object] = []
    if proxy_near_client is not None:
        relays.append(proxy_near_client)
    relays.append(
        mbox_cls(
            mbox_identity.name,
            _config(suite=suite, identity=mbox_identity, trusted_roots=[ca.certificate]),
        )
    )
    if proxy_near_server is not None:
        relays.append(proxy_near_server)
    return client, relays, server, Chain(client, relays, server)


def _build_field_session(
    spec: CellSpec, seed: int, record_index: int = 0, suite=None
):
    """Fresh compact-framed session for one per-field sub-context cell.

    One record-level WRITE middlebox, one context, one field schema
    granting it the "hdr" field only.  The "field" attacker is that
    middlebox abusing (or honouring) its field grants; the
    "flip-field-region" row is instead a key-less third party after the
    middlebox, flipping ciphertext inside the "body" byte range.
    """
    ca, server_identity, mbox_identities = _fixture()
    identity = mbox_identities[0]
    schema = _field_schema()
    topology = SessionTopology(
        middleboxes=[MiddleboxInfo(1, identity.name)],
        contexts=(ContextDefinition(1, "context-1", {1: Permission.WRITE}),),
    )
    client = McTLSClient(
        _config(
            suite=suite,
            trusted_roots=[ca.certificate],
            server_name=server_identity.name,
            framing="mctls-compact",
            field_schemas=(schema,),
        ),
        topology=topology,
    )
    server = McTLSServer(
        _config(suite=suite, identity=server_identity, trusted_roots=[ca.certificate])
    )
    mbox_config = _config(suite=suite, identity=identity, trusted_roots=[ca.certificate])

    relays: List[object] = []
    if spec.mutation == "flip-field-region":
        relays.append(McTLSMiddlebox(identity.name, mbox_config))
        relays.append(
            TamperProxy(
                TamperPlan(
                    seed=seed,
                    record_mutator=FlipFieldRegionBit(*_FIELD_BODY),
                    record_index=record_index,
                    direction=mk.C2S,
                )
            )
        )
    else:
        lo, hi = _FIELD_HDR if spec.mutation == "rewrite-granted" else _FIELD_BODY
        relays.append(
            McTLSMiddlebox(identity.name, mbox_config, transformer=_field_rewrite(lo, hi))
        )
    return client, relays, server, Chain(client, relays, server)


# -- per-cell topology --------------------------------------------------------

# Permission grants per (attacker, detector): a list of per-middlebox
# permissions, applied to BOTH contexts (context 2 exists so the
# context-swap mutator has a live target).
_GRANTS: Dict[Tuple[str, str], List[Permission]] = {
    ("third-party", "endpoint"): [],
    ("third-party", "reader-mbox"): [Permission.READ],
    ("third-party", "writer-mbox"): [Permission.WRITE],
    ("handshake", "handshake"): [Permission.READ],
    ("reader", "endpoint"): [Permission.READ],
    ("reader", "reader-mbox"): [Permission.READ, Permission.READ],
    ("reader", "writer-mbox"): [Permission.READ, Permission.WRITE],
    ("writer", "endpoint"): [Permission.WRITE],
    ("writer", "reader-mbox"): [Permission.WRITE, Permission.READ],
    ("writer", "writer-mbox"): [Permission.WRITE, Permission.WRITE],
}


def _build_session(spec: CellSpec, seed: int, record_index: int = 0, suite=None):
    """Fresh client / relays / server wired into a Chain for one cell.

    ``suite`` selects the record cipher suite every party negotiates
    (default SHA-CTR); Table 1 attribution is suite-independent because
    detection rides on the three HMAC-SHA256 record MACs, not the bulk
    cipher — re-running the matrix under the OpenSSL suites proves it.
    """
    ca, server_identity, mbox_identities = _fixture()
    grants = _GRANTS[(spec.attacker, spec.detector)]
    identities = mbox_identities[: len(grants)]

    middleboxes = [
        MiddleboxInfo(i + 1, identity.name) for i, identity in enumerate(identities)
    ]
    permissions = {i + 1: grant for i, grant in enumerate(grants)}
    contexts = tuple(
        ContextDefinition(ctx_id, f"context-{ctx_id}", dict(permissions))
        for ctx_id in (1, 2)
    )
    topology = SessionTopology(middleboxes=middleboxes, contexts=contexts)

    client = McTLSClient(
        _config(
            suite=suite,
            trusted_roots=[ca.certificate],
            server_name=server_identity.name,
        ),
        topology=topology,
    )
    server = McTLSServer(
        _config(suite=suite, identity=server_identity, trusted_roots=[ca.certificate])
    )

    relays: List[object] = []
    if spec.attacker in ("third-party", "handshake"):
        relays.append(TamperProxy(_plan_for(spec, seed, record_index)))
    for i, identity in enumerate(identities):
        config = _config(suite=suite, identity=identity, trusted_roots=[ca.certificate])
        if spec.attacker == "reader" and i == 0:
            relays.append(MaliciousReader(identity.name, config, target_context=1))
        elif spec.attacker == "writer" and i == 0:
            relays.append(
                McTLSMiddlebox(identity.name, config, transformer=_writer_transform)
            )
        else:
            relays.append(McTLSMiddlebox(identity.name, config))

    return client, relays, server, Chain(client, relays, server)


def _handshake_mutator(name: str) -> Tuple[HandshakeMutator, str]:
    """Fresh (mutator, direction) — handshake mutators are stateful."""
    if name == "hs-drop-client-key-exchange":
        return DropHandshakeMessage(tls_msgs.CLIENT_KEY_EXCHANGE), mk.C2S
    if name == "hs-flip-server-key-exchange":
        return FlipHandshakeBit(tls_msgs.SERVER_KEY_EXCHANGE), mk.S2C
    if name == "hs-escalate-permission":
        return EscalatePermission(mbox_id=1, context_id=1), mk.C2S
    raise KeyError(name)


def _plan_for(spec: CellSpec, seed: int, record_index: int = 0) -> TamperPlan:
    if spec.attacker == "handshake":
        mutator, direction = _handshake_mutator(spec.mutation)
        return TamperPlan(seed=seed, handshake_mutator=mutator, direction=direction)
    record_mutator = standard_record_mutators(swap_to=2)[spec.mutation]
    return TamperPlan(
        seed=seed,
        record_mutator=record_mutator,
        record_index=record_index,
        direction=mk.C2S,
    )


# -- running cells -------------------------------------------------------------


def _classify_failure(exc: TLSError) -> CellResult:
    info = failure_info(exc)
    if isinstance(info, mrec.MacVerificationError):
        return CellResult(Outcome.ILLEGAL, mac=info.mac, detected_by=info.where)
    return CellResult(Outcome.MALFORMED, detected_by=getattr(info, "where", None))


def run_cell(
    spec: CellSpec, seed: int = SEED, burst: bool = False, suite=None
) -> CellResult:
    """Run one cell of the matrix and classify the detection outcome.

    With ``burst=True`` the application phase queues three records and
    pumps them through the chain as ONE multi-record flight, with the
    tampering aimed at the middle record (``record_index=1``) — so the
    mutation lands mid-burst inside the relays' batched
    ``_relay_app_burst`` path instead of on a lone record.  Table 1
    attribution (outcome, MAC slot, detecting party) must not depend on
    which path carried the record; ``tests/test_fault_matrix.py``
    asserts both axes produce identical attribution.
    """
    if spec.attacker == "warrant":
        return _run_warrant_cell(spec, seed, suite=suite)
    builder = _build_field_session if spec.attacker == "field" else _build_session
    client, relays, server, chain = builder(
        spec, seed, record_index=1 if burst else 0, suite=suite
    )
    server_events: List[object] = []
    chain.on_server_event = server_events.append

    client.start_handshake()
    try:
        chain.pump()
    except TLSError:
        if spec.attacker == "handshake":
            return CellResult(Outcome.HANDSHAKE_FAILED)
        raise
    if spec.attacker == "handshake":
        if client.handshake_complete and server.handshake_complete:
            return CellResult(Outcome.ACCEPTED)
        return CellResult(Outcome.HANDSHAKE_FAILED)
    if not (client.handshake_complete and server.handshake_complete):
        raise RuntimeError(f"handshake did not complete for {spec}")

    try:
        if burst:
            client.send_application_data(PAYLOAD_1, context_id=1)
            client.send_application_data(PAYLOAD_2, context_id=1)
            client.send_application_data(PAYLOAD_3, context_id=1)
            chain.pump()
        else:
            client.send_application_data(PAYLOAD_1, context_id=1)
            chain.pump()
            client.send_application_data(PAYLOAD_2, context_id=1)
            chain.pump()
    except TLSError as exc:
        return _classify_failure(exc)

    app = [e for e in server_events if isinstance(e, McTLSApplicationData)]
    legal = any(e.legally_modified for e in app)
    return CellResult(
        Outcome.LEGAL if legal else Outcome.ACCEPTED,
        delivered=tuple(e.data for e in app),
        legally_modified=legal,
    )


def _run_warrant_cell(spec: CellSpec, seed: int, suite=None) -> CellResult:
    """Run one mdTLS warrant cell: the handshake must fail, and the
    ``WarrantError`` in the cause chain attributes who detected what."""
    client, relays, server, chain = _build_delegation_session(spec, seed, suite=suite)
    client.start_handshake()
    try:
        chain.pump()
    except TLSError as exc:
        info = failure_info(exc)
        return CellResult(
            Outcome.HANDSHAKE_FAILED,
            detected_by=getattr(info, "where", None),
            reason=getattr(info, "reason", None),
        )
    if client.handshake_complete and server.handshake_complete:
        return CellResult(Outcome.ACCEPTED)
    return CellResult(Outcome.HANDSHAKE_FAILED)


# -- the full matrix -----------------------------------------------------------

_RECORD_MUTATIONS = (
    "flip-payload",
    "flip-mac-endpoints",
    "flip-mac-writers",
    "flip-mac-readers",
    "truncate",
    "delete",
    "replay",
    "reorder",
    "context-swap",
    "version-confusion",
)

_DETECTORS = ("endpoint", "reader-mbox", "writer-mbox")

_HS_MUTATIONS = (
    "hs-drop-client-key-exchange",
    "hs-flip-server-key-exchange",
    "hs-escalate-permission",
)

# Per-field sub-context rows (compact framing; attacker "field").
_FIELD_MUTATIONS = (
    "rewrite-granted",
    "rewrite-ungranted",
    "flip-field-region",
)

# (detector, mutation, reason) per mdTLS warrant row.
_WARRANT_ROWS = (
    ("middlebox", "forged-signature", "forged"),
    ("middlebox", "expired-window", "expired"),
    ("middlebox", "widened-scope", "widened"),
    ("server", "forged-onpath", "forged"),
    ("server", "widened-scope", "widened"),
    ("client", "forged-onpath", "forged"),
    ("client", "expired-window", "expired"),
)


def _third_party_expected(mutation: str, detector: str) -> Expected:
    if mutation == "version-confusion":
        where = "endpoint" if detector == "endpoint" else "middlebox"
        return Expected(Outcome.MALFORMED, detected_by=where)
    if mutation == "flip-mac-endpoints":
        # Indistinguishable from a legal writer modification by design:
        # only MAC_endpoints mismatches, which is exactly the signal a
        # legal in-flight rewrite leaves behind.
        return Expected(Outcome.LEGAL)
    if mutation == "flip-mac-readers":
        if detector == "reader-mbox":
            return Expected(Outcome.ILLEGAL, mac=mrec.MAC_READERS, detected_by="middlebox")
        # Endpoints and writers never check MAC_readers (Table 1).
        return Expected(Outcome.ACCEPTED)
    if mutation == "flip-mac-writers" and detector == "reader-mbox":
        # A reader cannot check MAC_writers; the endpoint catches it.
        return Expected(Outcome.ILLEGAL, mac=mrec.MAC_WRITERS, detected_by="endpoint")
    # Everything else: the first checking party past the attacker.
    if detector == "endpoint":
        return Expected(Outcome.ILLEGAL, mac=mrec.MAC_WRITERS, detected_by="endpoint")
    if detector == "reader-mbox":
        return Expected(Outcome.ILLEGAL, mac=mrec.MAC_READERS, detected_by="middlebox")
    return Expected(Outcome.ILLEGAL, mac=mrec.MAC_WRITERS, detected_by="middlebox")


def expected_matrix() -> Dict[CellSpec, Expected]:
    """Table 1 as data: what every cell must produce."""
    expected: Dict[CellSpec, Expected] = {}
    for mutation in _RECORD_MUTATIONS:
        for detector in _DETECTORS:
            expected[CellSpec("third-party", detector, mutation)] = (
                _third_party_expected(mutation, detector)
            )
    # A malicious reader forges MAC_readers only.  Downstream readers
    # accept the forgery (the documented limitation — detected_by ==
    # "endpoint" in the reader-mbox cell proves the middlebox passed
    # it); the first writer or endpoint rejects via MAC_writers.
    expected[CellSpec("reader", "endpoint", "forge")] = Expected(
        Outcome.ILLEGAL, mac=mrec.MAC_WRITERS, detected_by="endpoint"
    )
    expected[CellSpec("reader", "reader-mbox", "forge")] = Expected(
        Outcome.ILLEGAL, mac=mrec.MAC_WRITERS, detected_by="endpoint"
    )
    expected[CellSpec("reader", "writer-mbox", "forge")] = Expected(
        Outcome.ILLEGAL, mac=mrec.MAC_WRITERS, detected_by="middlebox"
    )
    # A writer's modification is legal: flagged by the endpoint via
    # MAC_endpoints, accepted by every downstream party.
    for detector in _DETECTORS:
        expected[CellSpec("writer", detector, "transform")] = Expected(Outcome.LEGAL)
    for mutation in _HS_MUTATIONS:
        expected[CellSpec("handshake", "handshake", mutation)] = Expected(
            Outcome.HANDSHAKE_FAILED
        )
    # Per-field sub-context rows (compact framing).  A record-level
    # writer rewriting a field it was granted is legal (flagged via
    # MAC_endpoints); rewriting an ungranted field passes the writer MAC
    # but fails that field's MAC — detected by the endpoint and
    # attributed *to the field*.  A key-less third party flipping bits
    # inside a field's byte range fails the record writer MAC first:
    # field MACs refine insider attribution, record MACs still cover the
    # wire.
    expected[CellSpec("field", "endpoint", "rewrite-granted")] = Expected(Outcome.LEGAL)
    expected[CellSpec("field", "endpoint", "rewrite-ungranted")] = Expected(
        Outcome.ILLEGAL, mac="field:body", detected_by="endpoint"
    )
    expected[CellSpec("field", "endpoint", "flip-field-region")] = Expected(
        Outcome.ILLEGAL, mac=mrec.MAC_WRITERS, detected_by="endpoint"
    )
    # mdTLS delegation rows: a forged, expired or scope-widened warrant
    # fails the handshake, attributed to the right party and reason.
    # The "server"/"client" rows route the defect past the middlebox (an
    # on-path flip after it, or a colluding middlebox that skips its own
    # checks), proving endpoint detection is independent of relay honesty.
    for detector, mutation, reason in _WARRANT_ROWS:
        expected[CellSpec("warrant", detector, mutation)] = Expected(
            Outcome.HANDSHAKE_FAILED, detected_by=detector, reason=reason
        )
    return expected


def all_cells() -> List[CellSpec]:
    return list(expected_matrix().keys())


def run_matrix(
    seed: int = SEED, burst: bool = False, suite=None
) -> Dict[CellSpec, CellResult]:
    """Run every cell; deterministic for a fixed seed."""
    return {spec: run_cell(spec, seed, burst=burst, suite=suite) for spec in all_cells()}


__all__ = [
    "CellResult",
    "CellSpec",
    "Expected",
    "Outcome",
    "PAYLOAD_1",
    "PAYLOAD_2",
    "PAYLOAD_3",
    "SEED",
    "all_cells",
    "expected_matrix",
    "failure_info",
    "run_cell",
    "run_matrix",
]
