"""On-path attackers for the fault-injection harness.

Three adversaries, matching the rows of Table 1 (§3.4):

* :class:`TamperProxy` — a **third party** on the wire.  It holds no
  keys; all it can do is parse record framing and mutate ciphertext,
  drop, replay or reorder records, or rewrite cleartext handshake
  messages.  It implements the two-sided relay interface, so it slots
  into :class:`repro.transport.Chain` and (via
  :class:`repro.experiments.harness.RelayNode` / :class:`AttackerNode`)
  into ``repro.netsim`` simulations.
* :class:`MaliciousReader` — a **reader** middlebox that abuses its
  reader keys to forge records (recomputing ``MAC_readers`` only).
  Downstream readers accept the forgery — the paper's documented
  limitation — but writers and endpoints catch it via ``MAC_writers``.
* a malicious **writer** needs no machinery: an honest
  :class:`~repro.mctls.middlebox.McTLSMiddlebox` with a ``transformer``
  *is* the legal-modification case the endpoint flags via
  ``MAC_endpoints``.

Everything the proxy does not touch is forwarded byte-identically, so an
un-attacked session through a :class:`TamperProxy` behaves exactly like a
bare wire.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.experiments.harness import RelayNode
from repro.faults.mutations import (
    HandshakeMutator,
    RecordMutator,
    RecordView,
    parse_records,
)
from repro.mctls import keys as mk
from repro.mctls import record as mrec
from repro.mctls.contexts import ENDPOINT_CONTEXT_ID, Permission
from repro.mctls.middlebox import McTLSMiddlebox, _Side
from repro.mctls.record import MiddleboxRecordProcessor, OpenedRecord, mac_input
from repro.tls import messages as tls_msgs
from repro.tls import record as rec


@dataclass
class TamperPlan:
    """What a :class:`TamperProxy` should do, and when.

    ``record_index`` counts APPLICATION_DATA records in ``direction``
    (0-based); the mutator receives ``mutator.window`` consecutive
    records starting there.  ``handshake_mutator`` applies to cleartext
    handshake messages in ``direction`` before ChangeCipherSpec.
    """

    seed: int = 0
    record_mutator: Optional[RecordMutator] = None
    record_index: int = 0
    handshake_mutator: Optional[HandshakeMutator] = None
    direction: str = mk.C2S


class _DirState:
    """Per-direction parsing/mutation state inside a TamperProxy."""

    def __init__(self) -> None:
        self.inbuf = bytearray()
        self.hs_buf = tls_msgs.HandshakeBuffer()
        self.protected = False  # ChangeCipherSpec seen
        self.app_index = 0  # APPLICATION_DATA records seen
        self.pending: List[RecordView] = []  # window under collection
        self.done = False  # record mutation already applied


class TamperProxy:
    """A key-less on-path attacker with the two-sided relay interface.

    Tampering per :class:`TamperPlan`; every other byte is forwarded
    verbatim.  ``log`` records ``(direction, action)`` pairs for test
    introspection.
    """

    def __init__(self, plan: TamperPlan):
        self.plan = plan
        self.rng = random.Random(plan.seed)
        self.log: List[Tuple[str, str]] = []
        self._c2s = _DirState()
        self._s2c = _DirState()
        self._to_client = bytearray()
        self._to_server = bytearray()

    # -- relay interface ----------------------------------------------------

    def receive_from_client(self, data: bytes) -> List[object]:
        self._process(mk.C2S, self._c2s, self._to_server, data)
        return []

    def receive_from_server(self, data: bytes) -> List[object]:
        self._process(mk.S2C, self._s2c, self._to_client, data)
        return []

    def data_to_client(self) -> bytes:
        out = bytes(self._to_client)
        self._to_client.clear()
        return out

    def data_to_server(self) -> bytes:
        out = bytes(self._to_server)
        self._to_server.clear()
        return out

    def data_to_client_views(self) -> List[bytes]:
        out = self.data_to_client()
        return [out] if out else []

    def data_to_server_views(self) -> List[bytes]:
        out = self.data_to_server()
        return [out] if out else []

    # -- internals ----------------------------------------------------------

    def _process(
        self, direction: str, state: _DirState, out: bytearray, data: bytes
    ) -> None:
        state.inbuf += data
        for view in parse_records(state.inbuf):
            self._handle_record(direction, state, out, view)

    def _handle_record(
        self, direction: str, state: _DirState, out: bytearray, view: RecordView
    ) -> None:
        targeted = direction == self.plan.direction

        if view.content_type == rec.CHANGE_CIPHER_SPEC:
            state.protected = True
            out += view.to_bytes()
            return

        if (
            targeted
            and not state.protected
            and view.content_type == rec.HANDSHAKE
            and self.plan.handshake_mutator is not None
        ):
            self._mutate_handshake(direction, state, out, view)
            return

        if (
            targeted
            and state.protected
            and view.content_type == rec.APPLICATION_DATA
            and self.plan.record_mutator is not None
            and not state.done
        ):
            index = state.app_index
            state.app_index += 1
            mutator = self.plan.record_mutator
            start = self.plan.record_index
            if start <= index < start + mutator.window:
                state.pending.append(view)
                if len(state.pending) == mutator.window:
                    mutated = mutator.mutate(state.pending, self.rng)
                    state.pending = []
                    state.done = True
                    self.log.append((direction, mutator.name))
                    for m in mutated:
                        out += m.to_bytes()
                return  # held for the window, or just emitted
            out += view.to_bytes()
            return

        if targeted and state.protected and view.content_type == rec.APPLICATION_DATA:
            state.app_index += 1
        out += view.to_bytes()

    def _mutate_handshake(
        self, direction: str, state: _DirState, out: bytearray, view: RecordView
    ) -> None:
        """Re-frame handshake messages one per record, mutating en route."""
        state.hs_buf.feed(bytes(view.fragment))
        while True:
            message = state.hs_buf.next_message()
            if message is None:
                return
            msg_type, body, raw = message
            replacement = self.plan.handshake_mutator.mutate_message(
                msg_type, body, self.rng
            )
            if replacement is None:
                framed = [raw]
            else:
                self.log.append((direction, self.plan.handshake_mutator.name))
                framed = [tls_msgs.frame(t, b) for t, b in replacement]
            for msg_raw in framed:
                out += (
                    mrec.encode_header(rec.HANDSHAKE, ENDPOINT_CONTEXT_ID, len(msg_raw))
                    + msg_raw
                )


class AttackerNode(RelayNode):
    """A :class:`TamperProxy` bound to simulated TCP sockets.

    Drop-in for a :class:`~repro.experiments.harness.RelayNode` slot in a
    netsim path — see ``build_path(..., attacker=..., attacker_hop=...)``.
    """

    def __init__(self, sim, plan_or_proxy, downstream_socket, upstream_socket):
        proxy = (
            plan_or_proxy
            if isinstance(plan_or_proxy, TamperProxy)
            else TamperProxy(plan_or_proxy)
        )
        super().__init__(sim, proxy, downstream_socket, upstream_socket)
        self.proxy = proxy


# -- insider attackers ---------------------------------------------------------


def forge_reader_record(
    processor: MiddleboxRecordProcessor, opened: OpenedRecord, new_payload: bytes
) -> bytes:
    """Forge a record the way a malicious *reader* can (§3.4, Table 1).

    A reader holds the context's reader keys only, so it can recompute
    ``MAC_readers`` over its forged payload but must forward the original
    ``MAC_endpoints`` and ``MAC_writers`` unchanged.  Downstream readers
    verify happily; the first writer or endpoint rejects via
    ``MAC_writers``.
    """
    keys = processor.context_keys[opened.context_id]
    reader_keys = keys.readers.for_direction(processor.direction)
    covered = mac_input(
        opened.seq, opened.content_type, opened.context_id, new_payload
    )
    reader_mac = mrec._hmac_sha256(reader_keys.mac, covered)
    plaintext = new_payload + opened.endpoint_mac + opened.writer_mac + reader_mac
    fragment = processor.suite.new_cipher(reader_keys.enc).encrypt(plaintext)
    return (
        mrec.encode_header(opened.content_type, opened.context_id, len(fragment))
        + fragment
    )


class MaliciousReader(McTLSMiddlebox):
    """A middlebox that completes the handshake honestly with READ
    permission, then forges application records in flight."""

    def __init__(
        self,
        name,
        config,
        target_context: int = 1,
        rewrite: Callable[[bytes], bytes] = lambda p: b"forged:" + p,
        **kwargs,
    ):
        super().__init__(name, config, **kwargs)
        self.target_context = target_context
        self.rewrite = rewrite
        self.forged: List[Tuple[str, int]] = []

    def _handle_protected_record(self, side, content_type, context_id, fragment, raw):
        if (
            content_type != rec.APPLICATION_DATA
            or context_id != self.target_context
            or self.permissions.get(context_id) is not Permission.READ
        ):
            super()._handle_protected_record(side, content_type, context_id, fragment, raw)
            return
        processor = self._proc_c2s if side is _Side.CLIENT else self._proc_s2c
        direction = mk.C2S if side is _Side.CLIENT else mk.S2C
        opened = processor.open_record(content_type, context_id, fragment)
        forged = forge_reader_record(processor, opened, self.rewrite(opened.payload))
        self.forged.append((direction, opened.seq))
        self._out_for(side).append(forged)


__all__ = [
    "AttackerNode",
    "MaliciousReader",
    "TamperPlan",
    "TamperProxy",
    "forge_reader_record",
]
