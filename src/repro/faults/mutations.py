"""Seeded, deterministic mutation engine for mcTLS traffic (§3.4, Table 1).

A *mutator* is a small, named, reproducible transformation of an mcTLS
record stream — the kinds of tampering the paper's threat model grants a
network attacker (intercept, alter, drop, insert, §3.2).  Mutators are
driven by a :class:`random.Random` seeded by the caller, so for a fixed
seed and the same traffic the same bits flip every run; the property
harness in :mod:`repro.faults.matrix` relies on this to turn Table 1
into an executable, regression-checkable specification.

Two families:

* **record mutators** operate on protected records as parsed
  :class:`RecordView` windows (bit-flips targeted at the payload or at
  each of the three MAC slots, truncation, deletion, replay, reordering,
  context-ID splicing, cross-protocol version confusion);
* **handshake mutators** operate on individual cleartext handshake
  messages (drop, field bit-flip, middlebox-list tampering).

Untouched records must be forwarded byte-identically, so
:func:`parse_records` is deliberately tolerant: it only reads the length
field and never validates — an attacker forwards what it cannot parse.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.framing import COMPACT_MARKER_BASE, MCTLS_COMPACT
from repro.mctls.contexts import ContextDefinition, Permission, SessionTopology
from repro.mctls.record import MAC_LEN, MCTLS_HEADER_LEN
from repro.tls import messages as tls_msgs
from repro.tls.record import TLS_VERSION

# Both bulk ciphers prefix an explicit 16-byte IV/nonce to the fragment,
# and the stream suite preserves byte positions — so byte i of the
# ciphertext body maps to byte i of ``payload || 3 MACs``.
NONCE_LEN = 16


@dataclass
class RecordView:
    """One raw mcTLS record, mutable in place.

    ``compact`` marks a record that arrived under the compact framing
    (4-byte marker header, no wire version field); :meth:`to_bytes`
    re-serialises it with the same framing it was parsed with, so an
    attacker forwards exactly what it saw.
    """

    content_type: int
    version: int
    context_id: int
    fragment: bytearray
    compact: bool = False

    def to_bytes(self) -> bytes:
        if self.compact:
            return (
                bytes([COMPACT_MARKER_BASE | (self.content_type - 20)])
                + bytes([self.context_id])
                + len(self.fragment).to_bytes(2, "big")
                + bytes(self.fragment)
            )
        return (
            bytes([self.content_type])
            + self.version.to_bytes(2, "big")
            + bytes([self.context_id])
            + len(self.fragment).to_bytes(2, "big")
            + bytes(self.fragment)
        )

    def copy(self) -> "RecordView":
        return RecordView(
            self.content_type,
            self.version,
            self.context_id,
            bytearray(self.fragment),
            compact=self.compact,
        )


_COMPACT_HEADER_LEN = MCTLS_COMPACT.header_len


def parse_records(buf: bytearray) -> List[RecordView]:
    """Consume complete records from ``buf`` without validating them.

    The compact marker byte range (0xD0-0xD3) is disjoint from the
    default content types, so mixed default/compact streams parse
    per record with no session state.
    """
    views: List[RecordView] = []
    while buf:
        if COMPACT_MARKER_BASE <= buf[0] <= COMPACT_MARKER_BASE | 0x03:
            if len(buf) < _COMPACT_HEADER_LEN:
                break
            length = int.from_bytes(buf[2:4], "big")
            if len(buf) < _COMPACT_HEADER_LEN + length:
                break
            views.append(
                RecordView(
                    content_type=20 + (buf[0] & 0x03),
                    version=MCTLS_COMPACT.wire_version,
                    context_id=buf[1],
                    fragment=bytearray(
                        buf[_COMPACT_HEADER_LEN : _COMPACT_HEADER_LEN + length]
                    ),
                    compact=True,
                )
            )
            del buf[: _COMPACT_HEADER_LEN + length]
            continue
        if len(buf) < MCTLS_HEADER_LEN:
            break
        length = int.from_bytes(buf[4:6], "big")
        if len(buf) < MCTLS_HEADER_LEN + length:
            break
        views.append(
            RecordView(
                content_type=buf[0],
                version=int.from_bytes(buf[1:3], "big"),
                context_id=buf[3],
                fragment=bytearray(buf[MCTLS_HEADER_LEN : MCTLS_HEADER_LEN + length]),
            )
        )
        del buf[: MCTLS_HEADER_LEN + length]
    return views


# -- record mutators ---------------------------------------------------------


class RecordMutator:
    """Base: transform a window of consecutive application records.

    ``window`` is how many consecutive records (starting at the trigger)
    :meth:`mutate` receives; it returns the records to forward instead.
    """

    name = "?"
    mutation_class = "?"
    window = 1

    def mutate(self, records: List[RecordView], rng: random.Random) -> List[RecordView]:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"


def _payload_region(view: RecordView) -> Tuple[int, int]:
    """Fragment byte range backing the payload of an app-context record."""
    return NONCE_LEN, len(view.fragment) - 3 * MAC_LEN


class FlipPayloadBit(RecordMutator):
    """Flip one seeded bit inside the encrypted payload region."""

    name = "flip-payload"
    mutation_class = "bit-flip"

    def mutate(self, records, rng):
        view = records[0]
        lo, hi = _payload_region(view)
        if hi <= lo:
            raise ValueError("record has no payload bytes to flip")
        pos = rng.randrange(lo, hi)
        view.fragment[pos] ^= 1 << rng.randrange(8)
        return records


class FlipMacBit(RecordMutator):
    """Flip one seeded bit inside a specific MAC slot.

    Slot offsets count from the fragment end: ``payload || MAC_endpoints
    || MAC_writers || MAC_readers``.
    """

    mutation_class = "bit-flip"
    _SLOTS = {"endpoints": 3, "writers": 2, "readers": 1}

    def __init__(self, slot: str):
        if slot not in self._SLOTS:
            raise ValueError(f"unknown MAC slot {slot!r}")
        self.slot = slot
        self.name = f"flip-mac-{slot}"

    def mutate(self, records, rng):
        view = records[0]
        end_offset = self._SLOTS[self.slot] * MAC_LEN
        start = len(view.fragment) - end_offset
        pos = start + rng.randrange(MAC_LEN)
        view.fragment[pos] ^= 1 << rng.randrange(8)
        return records


class FlipFieldRegionBit(RecordMutator):
    """Flip one seeded bit inside a specific payload byte range.

    Built for the per-field sub-context rows of the fault matrix: under
    a position-preserving stream suite, payload byte ``i`` lives at
    ciphertext byte ``NONCE_LEN + i``, so the flip lands inside a chosen
    :class:`~repro.mctls.contexts.FieldDef` byte range.  A third party
    holds no keys at all, so the flip fails the *record* writer MAC
    before any field MAC is consulted — field MACs refine attribution
    for key-holding insiders, they do not replace record MACs.
    """

    name = "flip-field-region"
    mutation_class = "bit-flip"

    def __init__(self, start: int, end: int):
        if not 0 <= start < end:
            raise ValueError("field region must be a non-empty byte range")
        self.start = start
        self.end = end

    def mutate(self, records, rng):
        view = records[0]
        pos = NONCE_LEN + rng.randrange(self.start, self.end)
        if pos >= len(view.fragment):
            raise ValueError("field region lies outside the record fragment")
        view.fragment[pos] ^= 1 << rng.randrange(8)
        return records


class TruncateRecord(RecordMutator):
    """Cut bytes off the fragment end (header length is re-derived)."""

    name = "truncate"
    mutation_class = "truncation"

    def __init__(self, count: int = 1):
        self.count = count

    def mutate(self, records, rng):
        view = records[0]
        if len(view.fragment) <= self.count:
            raise ValueError("truncation would consume the whole fragment")
        del view.fragment[-self.count :]
        return records


class DeleteRecord(RecordMutator):
    """Silently drop the record (third-party deletion)."""

    name = "delete"
    mutation_class = "deletion"

    def mutate(self, records, rng):
        return []


class ReplayRecord(RecordMutator):
    """Forward the record, then inject a byte-identical copy."""

    name = "replay"
    mutation_class = "replay"

    def mutate(self, records, rng):
        return [records[0], records[0].copy()]


class ReorderRecords(RecordMutator):
    """Swap two consecutive records on the wire."""

    name = "reorder"
    mutation_class = "reordering"
    window = 2

    def mutate(self, records, rng):
        return [records[1], records[0]]


class ContextIdSwap(RecordMutator):
    """Rewrite the header's context ID — splice a record across contexts."""

    name = "context-swap"
    mutation_class = "splicing"

    def __init__(self, new_context_id: int = 2):
        self.new_context_id = new_context_id

    def mutate(self, records, rng):
        view = records[0]
        if view.context_id == self.new_context_id:
            raise ValueError("context swap target equals the original context")
        view.context_id = self.new_context_id
        return records


class VersionConfusion(RecordMutator):
    """Rewrite the record version to plain TLS 1.2 (cross-protocol)."""

    name = "version-confusion"
    mutation_class = "version-confusion"

    def __init__(self, version: int = TLS_VERSION):
        self.version = version

    def mutate(self, records, rng):
        records[0].version = self.version
        return records


def standard_record_mutators(swap_to: int = 2) -> Dict[str, RecordMutator]:
    """Fresh instances of every record mutator, keyed by name."""
    mutators = [
        FlipPayloadBit(),
        FlipMacBit("endpoints"),
        FlipMacBit("writers"),
        FlipMacBit("readers"),
        TruncateRecord(),
        DeleteRecord(),
        ReplayRecord(),
        ReorderRecords(),
        ContextIdSwap(new_context_id=swap_to),
        VersionConfusion(),
    ]
    return {m.name: m for m in mutators}


# -- handshake mutators --------------------------------------------------------


class HandshakeMutator:
    """Base: transform individual cleartext handshake messages.

    :meth:`mutate_message` returns ``None`` to forward the message
    untouched, ``[]`` to drop it, or replacement ``(msg_type, body)``
    pairs.  Instances are stateful (they fire once) — use a fresh one per
    session.
    """

    name = "?"
    mutation_class = "handshake"

    def mutate_message(
        self, msg_type: int, body: bytes, rng: random.Random
    ) -> Optional[List[Tuple[int, bytes]]]:
        raise NotImplementedError


class DropHandshakeMessage(HandshakeMutator):
    """Delete the first handshake message of the targeted type."""

    mutation_class = "message-drop"

    def __init__(self, msg_type: int):
        self.msg_type = msg_type
        self.name = f"hs-drop-{msg_type}"
        self._done = False

    def mutate_message(self, msg_type, body, rng):
        if self._done or msg_type != self.msg_type:
            return None
        self._done = True
        return []


class FlipHandshakeBit(HandshakeMutator):
    """Flip a seeded bit in the first handshake message of a type."""

    mutation_class = "field-mutation"

    def __init__(self, msg_type: int):
        self.msg_type = msg_type
        self.name = f"hs-flip-{msg_type}"
        self._done = False

    def mutate_message(self, msg_type, body, rng):
        if self._done or msg_type != self.msg_type or not body:
            return None
        self._done = True
        mutated = bytearray(body)
        mutated[rng.randrange(len(mutated))] ^= 1 << rng.randrange(8)
        return [(msg_type, bytes(mutated))]


class EscalatePermission(HandshakeMutator):
    """Rewrite the ClientHello's MiddleboxListExtension to escalate one
    middlebox's permission — the §4.2 attack the Finished exchange must
    catch."""

    mutation_class = "middlebox-list-tampering"

    def __init__(self, mbox_id: int, context_id: int, to: Permission = Permission.WRITE):
        self.mbox_id = mbox_id
        self.context_id = context_id
        self.to = to
        self.name = "hs-escalate-permission"
        self._done = False

    def mutate_message(self, msg_type, body, rng):
        if self._done or msg_type != tls_msgs.CLIENT_HELLO:
            return None
        self._done = True
        hello = tls_msgs.ClientHello.decode(body)
        ext = hello.find_extension(tls_msgs.EXT_MIDDLEBOX_LIST)
        if ext is None:
            return None
        topology = SessionTopology.decode(ext)
        contexts = []
        for ctx in topology.contexts:
            permissions = dict(ctx.permissions)
            if ctx.context_id == self.context_id:
                permissions[self.mbox_id] = self.to
            contexts.append(
                ContextDefinition(ctx.context_id, ctx.purpose, permissions)
            )
        tampered = SessionTopology(
            middleboxes=topology.middleboxes, contexts=tuple(contexts)
        )
        hello.extensions = [
            (etype, tampered.encode() if etype == tls_msgs.EXT_MIDDLEBOX_LIST else data)
            for etype, data in hello.extensions
        ]
        return [(msg_type, hello.encode())]


__all__ = [
    "ContextIdSwap",
    "DeleteRecord",
    "DropHandshakeMessage",
    "EscalatePermission",
    "FlipFieldRegionBit",
    "FlipHandshakeBit",
    "FlipMacBit",
    "FlipPayloadBit",
    "HandshakeMutator",
    "NONCE_LEN",
    "RecordMutator",
    "RecordView",
    "ReorderRecords",
    "ReplayRecord",
    "TruncateRecord",
    "VersionConfusion",
    "parse_records",
    "standard_record_mutators",
]
