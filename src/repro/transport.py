"""In-memory transports for driving sans-I/O connections.

Both helpers here are thin veneers over :class:`repro.core.DriveLoop`,
the single byte-shuttling loop shared by every in-memory harness:

:func:`pump` shuttles pending bytes between two directly connected
:class:`repro.core.Connection` objects until neither has anything to
send — the workhorse for tests and for CPU benchmarks where network
timing is irrelevant.

:class:`Chain` wires a client and server through an ordered list of
:class:`repro.core.RelayProcessor` relays (mcTLS middleboxes, the
SplitTLS / E2E-TLS / NoEncrypt baselines).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core.driveloop import DriveLoop
from repro.core.events import Event


def pump(a, b, max_rounds: int = 100) -> List[Event]:
    """Exchange bytes between two connections until both go quiet.

    Returns every event either side produced, in delivery order.
    """
    return DriveLoop(a, (), b).pump(max_rounds)


class Chain(DriveLoop):
    """Client ⇄ relays ⇄ server over in-memory pipes.

    The historical name for :class:`repro.core.DriveLoop` with a
    positional ``(client, relays, server)`` constructor; kept because
    experiment code reads naturally with it.
    """

    def __init__(self, client, relays: Sequence[object], server):
        super().__init__(client, relays, server)
