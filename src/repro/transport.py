"""In-memory transports for driving sans-I/O connections.

:func:`pump` shuttles pending bytes between two directly connected
protocol objects until neither has anything to send — the workhorse for
tests and for CPU benchmarks where network timing is irrelevant.

:class:`Chain` wires a client and server through an ordered list of
middlebox-like relays, each exposing the two-sided relay interface used by
mcTLS middleboxes and the SplitTLS / E2E-TLS baselines:

* ``receive_from_client(data) -> events``
* ``receive_from_server(data) -> events``
* ``data_to_client()`` / ``data_to_server()``
"""

from __future__ import annotations

from typing import List, Sequence


def pump(a, b, max_rounds: int = 100) -> List[object]:
    """Exchange bytes between two connections until both go quiet.

    Returns every event either side produced, in delivery order.
    """
    events: List[object] = []
    for _ in range(max_rounds):
        data_ab = a.data_to_send()
        data_ba = b.data_to_send()
        if not data_ab and not data_ba:
            return events
        if data_ab:
            events.extend(b.receive_bytes(data_ab))
        if data_ba:
            events.extend(a.receive_bytes(data_ba))
    raise RuntimeError("pump did not converge")


class Chain:
    """Client ⇄ relays ⇄ server over in-memory pipes.

    The client and server are sans-I/O connections; each relay is a
    two-sided object (see module docstring).  :meth:`pump` delivers all
    pending bytes along the path until the whole chain is quiet.
    """

    def __init__(self, client, relays: Sequence[object], server):
        self.client = client
        self.relays = list(relays)
        self.server = server
        self.events: List[object] = []
        # Optional per-node event sinks: callables invoked with each event
        # the node produces (used to route application data to sessions).
        self.on_client_event = None
        self.on_server_event = None

    def pump(self, max_rounds: int = 200) -> List[object]:
        """Deliver bytes along the chain until no node has output pending."""
        new_events: List[object] = []
        for _ in range(max_rounds):
            moved = False

            # Client towards server.
            data = self.client.data_to_send()
            if data:
                moved = True
                new_events.extend(self._deliver_towards_server(0, data))

            # Relays towards both directions.
            for i, relay in enumerate(self.relays):
                to_server = relay.data_to_server()
                if to_server:
                    moved = True
                    new_events.extend(self._deliver_towards_server(i + 1, to_server))
                to_client = relay.data_to_client()
                if to_client:
                    moved = True
                    new_events.extend(self._deliver_towards_client(i - 1, to_client))

            # Server towards client.
            data = self.server.data_to_send()
            if data:
                moved = True
                new_events.extend(
                    self._deliver_towards_client(len(self.relays) - 1, data)
                )

            if not moved:
                self.events.extend(new_events)
                return new_events
        raise RuntimeError("chain pump did not converge")

    def _deliver_towards_server(self, relay_index: int, data: bytes) -> List[object]:
        """Deliver bytes moving server-ward into the node at ``relay_index``."""
        if relay_index < len(self.relays):
            return list(self.relays[relay_index].receive_from_client(data))
        events = list(self.server.receive_bytes(data))
        if self.on_server_event is not None:
            for event in events:
                self.on_server_event(event)
        return events

    def _deliver_towards_client(self, relay_index: int, data: bytes) -> List[object]:
        """Deliver bytes moving client-ward into the node at ``relay_index``."""
        if relay_index >= 0:
            return list(self.relays[relay_index].receive_from_server(data))
        events = list(self.client.receive_bytes(data))
        if self.on_client_event is not None:
            for event in events:
                self.on_client_event(event)
        return events
