"""Pluggable record framing: the wire geometry seam.

A :class:`RecordFraming` instance bundles everything a record layer
needs to know about how records look on the wire — header layout,
MAC-trailer geometry (how many bytes each MAC slot occupies), the
version value bound into MAC inputs, the explicit-nonce length, and the
max-fragment policy.  The record layers (:mod:`repro.tls.record`,
:mod:`repro.mctls.record`), the middlebox burst paths and
:mod:`repro.trace` all dispatch on a framing instance instead of
hard-coding struct formats, so adding a framing (an AEAD layout, a
compact industrial layout) is a new instance here — not a parallel
record layer.

Three instances ship:

``TLS_DEFAULT``
    The RFC 5246 layout: ``type(1) || version(2) || length(2)``,
    full-length (32 B) HMAC trailer.

``MCTLS_DEFAULT``
    The mcTLS layout (§3.4): ``type(1) || version(2) || context_id(1)
    || length(2)``, full-length MAC slots.  Byte-identical to what the
    repo produced before this seam existed — pinned by the frozen
    golden vectors.

``MCTLS_COMPACT``
    A Madtls-style compact layout for industrial links carrying tiny
    periodic records: ``marker(1) || context_id(1) || length(2)`` —
    two header bytes fewer than the default — with MAC slots truncated
    to 8 bytes and room for per-field MACs in the trailer (see
    :class:`repro.mctls.contexts.FieldSchema`).  The marker byte is
    ``0xD0 | (content_type - 20)``, a range disjoint from the TLS
    content types 20–23, so a capture mixing both framings stays
    decodable record by record.  MAC inputs bind the distinct version
    value ``0xFC04`` so a compact record can never be replayed into a
    default-framed session (framing is negotiated, not implied).

Framings never change mid-record, and the default framing always
carries the handshake: a session switches to its negotiated framing at
the ChangeCipherSpec boundary, exactly like cipher activation.
"""

from __future__ import annotations

from struct import Struct
from typing import Dict, Optional, Tuple

# Record content types (RFC 5246) — defined here, at the bottom layer,
# and re-exported by repro.tls.record for compatibility.
CHANGE_CIPHER_SPEC = 20
ALERT = 21
HANDSHAKE = 22
APPLICATION_DATA = 23

CONTENT_TYPES = (CHANGE_CIPHER_SPEC, ALERT, HANDSHAKE, APPLICATION_DATA)

TLS_VERSION = 0x0303  # TLS 1.2
# mcTLS records carry their own version so cross-protocol confusion with
# plain TLS fails immediately instead of stalling on a misparsed length.
MCTLS_VERSION = 0xFC03
# The compact framing has no version bytes on the wire; this value is
# bound into its MAC inputs instead (domain separation between framings).
MCTLS_COMPACT_VERSION = 0xFC04

MAX_PLAINTEXT = 1 << 14
# Protected fragments may exceed MAX_PLAINTEXT by MACs + padding + IV.
MAX_FRAGMENT = MAX_PLAINTEXT + 2048

# Compact-framing marker byte for content type 20 (markers 0xD0..0xD3).
COMPACT_MARKER_BASE = 0xD0


class FramingError(Exception):
    """Malformed header bytes for the framing asked to parse them."""


class RecordFraming:
    """One wire geometry.  Instances are stateless and shared."""

    name: str
    framing_id: int
    header_len: int
    mac_len: int
    carries_context_id: bool
    field_macs: bool
    wire_version: Optional[int]
    mac_version: int
    nonce_len: int = 16
    max_fragment: int = MAX_FRAGMENT
    context_id_offset: Optional[int] = None
    len_offsets: Tuple[int, int] = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RecordFraming {self.name} id={self.framing_id}>"

    # -- header ---------------------------------------------------------

    def type_byte(self, content_type: int) -> int:
        """The first wire byte a record of ``content_type`` starts with."""
        raise NotImplementedError

    def pack_header(self, content_type: int, context_id: int, length: int) -> bytes:
        raise NotImplementedError

    def parse_header(self, data, pos: int = 0) -> Tuple[int, int, int]:
        """``(content_type, context_id, length)`` at ``data[pos:]``.

        Raises :class:`FramingError` on bytes this framing rejects;
        never reads past ``pos + header_len``.  Context-less framings
        report context 0.
        """
        raise NotImplementedError

    # -- MAC geometry ---------------------------------------------------

    def pack_mac_prefix(
        self, seq: int, content_type: int, context_id: int, payload_len: int
    ) -> bytes:
        """The fixed prefix every MAC of this framing covers."""
        raise NotImplementedError

    def truncate_mac(self, mac: bytes) -> bytes:
        """Clip a full digest to this framing's trailer slot width."""
        return mac[: self.mac_len]

    # -- vectorized scan geometry --------------------------------------

    def scan_pattern(
        self, content_type: int, length: int
    ) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        """Byte ``(offsets, values)`` fixed across a uniform burst.

        Covers every header byte except the context ID (extracted
        separately at :attr:`context_id_offset`); a strided comparison
        against these validates a whole run of same-shape headers.
        """
        raise NotImplementedError

    def grid_pattern(
        self, content_type: int, context_id: int, length: int
    ) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        """Like :meth:`scan_pattern` but pinning the context ID too and
        omitting version bytes (the caller already validated them per
        record) — the uniform-grid check of ``open_wire_burst``."""
        offsets = [0]
        values = [self.type_byte(content_type)]
        if self.context_id_offset is not None:
            offsets.append(self.context_id_offset)
            values.append(context_id)
        offsets.extend(self.len_offsets)
        values.extend((length >> 8, length & 0xFF))
        return tuple(offsets), tuple(values)


class _TLSFraming(RecordFraming):
    """RFC 5246 framing: ``type(1) || version(2) || length(2)``."""

    name = "tls-default"
    framing_id = 0
    header_len = 5
    mac_len = 32
    carries_context_id = False
    field_macs = False
    wire_version = TLS_VERSION
    mac_version = TLS_VERSION
    context_id_offset = None
    len_offsets = (3, 4)

    header = Struct(">BHH")
    # seq(8) || type(1) || version(2) || plaintext_length(2)
    mac_prefix_struct = Struct(">QBHH")

    def type_byte(self, content_type: int) -> int:
        return content_type

    def pack_header(self, content_type: int, context_id: int, length: int) -> bytes:
        return self.header.pack(content_type, TLS_VERSION, length)

    def parse_header(self, data, pos: int = 0) -> Tuple[int, int, int]:
        content_type, version, length = self.header.unpack_from(data, pos)
        if content_type not in CONTENT_TYPES:
            raise FramingError(f"invalid content type {content_type}")
        if version != TLS_VERSION:
            raise FramingError(f"unsupported record version 0x{version:04x}")
        return content_type, 0, length

    def pack_mac_prefix(
        self, seq: int, content_type: int, context_id: int, payload_len: int
    ) -> bytes:
        return self.mac_prefix_struct.pack(seq, content_type, TLS_VERSION, payload_len)

    def scan_pattern(self, content_type, length):
        return (
            (0, 1, 2, 3, 4),
            (
                content_type,
                TLS_VERSION >> 8,
                TLS_VERSION & 0xFF,
                length >> 8,
                length & 0xFF,
            ),
        )


class _McTLSDefaultFraming(RecordFraming):
    """mcTLS §3.4 framing: ``type || version(2) || context_id || length(2)``."""

    name = "mctls-default"
    framing_id = 1
    header_len = 6
    mac_len = 32
    carries_context_id = True
    field_macs = False
    wire_version = MCTLS_VERSION
    mac_version = MCTLS_VERSION
    context_id_offset = 3
    len_offsets = (4, 5)

    header = Struct(">BHBH")
    # seq(8) || type(1) || version(2) || context_id(1) || payload_length(2)
    mac_prefix_struct = Struct(">QBHBH")

    def type_byte(self, content_type: int) -> int:
        return content_type

    def pack_header(self, content_type: int, context_id: int, length: int) -> bytes:
        return self.header.pack(content_type, MCTLS_VERSION, context_id, length)

    def parse_header(self, data, pos: int = 0) -> Tuple[int, int, int]:
        content_type, version, context_id, length = self.header.unpack_from(data, pos)
        if content_type not in CONTENT_TYPES:
            raise FramingError(f"invalid content type {content_type}")
        if version != MCTLS_VERSION:
            raise FramingError(f"unsupported record version 0x{version:04x}")
        return content_type, context_id, length

    def pack_mac_prefix(
        self, seq: int, content_type: int, context_id: int, payload_len: int
    ) -> bytes:
        return self.mac_prefix_struct.pack(
            seq, content_type, MCTLS_VERSION, context_id, payload_len
        )

    def scan_pattern(self, content_type, length):
        return (
            (0, 1, 2, 4, 5),
            (
                content_type,
                MCTLS_VERSION >> 8,
                MCTLS_VERSION & 0xFF,
                length >> 8,
                length & 0xFF,
            ),
        )


class _McTLSCompactFraming(RecordFraming):
    """Madtls-style compact framing for tiny periodic records.

    ``marker(1) || context_id(1) || length(2)`` — the marker encodes the
    content type as ``0xD0 | (type - 20)`` so the first byte of a record
    also identifies the framing.  MAC slots are truncated to 8 bytes
    (Madtls's per-chunk authentication tags), and application-context
    trailers may carry per-field MACs after the three record MACs.
    """

    name = "mctls-compact"
    framing_id = 2
    header_len = 4
    mac_len = 8
    carries_context_id = True
    field_macs = True
    wire_version = None
    mac_version = MCTLS_COMPACT_VERSION
    context_id_offset = 1
    len_offsets = (2, 3)

    header = Struct(">BBH")
    # Same MAC-prefix shape as the default framing; only the bound
    # version value differs (domain separation between framings).
    mac_prefix_struct = Struct(">QBHBH")

    def type_byte(self, content_type: int) -> int:
        return COMPACT_MARKER_BASE | (content_type - CHANGE_CIPHER_SPEC)

    def pack_header(self, content_type: int, context_id: int, length: int) -> bytes:
        if content_type not in CONTENT_TYPES:
            raise FramingError(f"invalid content type {content_type}")
        return self.header.pack(self.type_byte(content_type), context_id, length)

    def parse_header(self, data, pos: int = 0) -> Tuple[int, int, int]:
        marker, context_id, length = self.header.unpack_from(data, pos)
        if marker & 0xFC != COMPACT_MARKER_BASE:
            raise FramingError(f"invalid compact framing marker 0x{marker:02x}")
        return CHANGE_CIPHER_SPEC + (marker & 0x03), context_id, length

    def pack_mac_prefix(
        self, seq: int, content_type: int, context_id: int, payload_len: int
    ) -> bytes:
        return self.mac_prefix_struct.pack(
            seq, content_type, MCTLS_COMPACT_VERSION, context_id, payload_len
        )

    def scan_pattern(self, content_type, length):
        return (
            (0, 2, 3),
            (self.type_byte(content_type), length >> 8, length & 0xFF),
        )


TLS_DEFAULT = _TLSFraming()
MCTLS_DEFAULT = _McTLSDefaultFraming()
MCTLS_COMPACT = _McTLSCompactFraming()

FRAMINGS: Tuple[RecordFraming, ...] = (TLS_DEFAULT, MCTLS_DEFAULT, MCTLS_COMPACT)
FRAMING_BY_ID: Dict[int, RecordFraming] = {f.framing_id: f for f in FRAMINGS}
FRAMING_BY_NAME: Dict[str, RecordFraming] = {f.name: f for f in FRAMINGS}


def framing_by_id(framing_id: int) -> RecordFraming:
    try:
        return FRAMING_BY_ID[framing_id]
    except KeyError:
        raise FramingError(f"unknown framing id {framing_id}") from None


def framing_by_name(name: str) -> RecordFraming:
    try:
        return FRAMING_BY_NAME[name]
    except KeyError:
        raise FramingError(f"unknown framing {name!r}") from None


def detect_mctls_framing(first_byte: int) -> RecordFraming:
    """Guess the framing of an mcTLS record from its first wire byte.

    The compact marker range (0xD0–0xD3) is disjoint from the content
    types (20–23), so a passive observer — :func:`repro.trace.describe_stream`
    — can decode captures that mix default-framed handshake records with
    compact-framed data records.  Unrecognized bytes report as default
    framing, whose parser raises the precise error.
    """
    if COMPACT_MARKER_BASE <= first_byte <= COMPACT_MARKER_BASE | 0x03:
        return MCTLS_COMPACT
    return MCTLS_DEFAULT
