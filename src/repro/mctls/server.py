"""The mcTLS server state machine (§3.5, Figure 1).

The server learns the proposed middlebox/context topology from the
ClientHello's MiddleboxListExtension.  It may apply a *policy* that caps
each middlebox's permissions (the "server can say no" control of §4.2 —
e.g. online banking): the server simply withholds its half of any context
key it does not approve, so the middlebox can never reconstruct that key
even though the client granted its own half.

The server also chooses the handshake mode (§3.6): ``DEFAULT``
(contributory — both endpoints distribute half-keys) or
``CLIENT_KEY_DIST`` (the client alone distributes full keys, sparing the
server the per-middlebox public-key work).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from enum import Enum, auto
from typing import Callable, Dict, Optional, Sequence

from repro import framing as frm
from repro.crypto.certs import Certificate, verify_chain
from repro.crypto.dh import DHKeyPair
from repro.mctls import keys as mk
from repro.mctls import messages as mm
from repro.mctls import session as ms
from repro.mctls.contexts import ENDPOINT_TARGET, SessionTopology
from repro.tls import keyschedule as ks
from repro.tls import messages as tls_msgs
from repro.tls.ciphersuites import CipherError
from repro.tls.connection import (
    ALERT_BAD_CERTIFICATE,
    ALERT_DECRYPT_ERROR,
    ALERT_UNEXPECTED_MESSAGE,
    TLSConfig,
    TLSError,
)
from repro.tls.sessioncache import SessionCache, new_session_id
from repro.tls.tickets import KIND_MCTLS, TicketError, TicketKeyManager


class _State(Enum):
    WAIT_CLIENT_HELLO = auto()
    WAIT_CLIENT_FLIGHT = auto()
    CONNECTED = auto()


@dataclass
class _MiddleboxState:
    mbox_id: int
    name: str
    random: Optional[bytes] = None
    chain: Sequence[Certificate] = ()
    ke_to_client: Optional[mm.MiddleboxKeyExchange] = None
    ke_to_server: Optional[mm.MiddleboxKeyExchange] = None
    pairwise: Optional[mk.PairwiseKeys] = None


class McTLSServer(ms.McTLSConnectionBase):
    """A sans-I/O mcTLS server.

    ``mode`` selects the handshake variant; ``topology_policy`` (if given)
    maps the client-proposed :class:`SessionTopology` to the topology the
    server actually *approves* — the server distributes key halves
    according to the approved topology only.
    """

    def __init__(
        self,
        config: TLSConfig,
        mode: ms.HandshakeMode = ms.HandshakeMode.DEFAULT,
        topology_policy: Optional[Callable[[SessionTopology], SessionTopology]] = None,
        verify_middleboxes: bool = True,
        session_cache: Optional[SessionCache] = None,
        ticket_manager: Optional[TicketKeyManager] = None,
    ):
        if config.identity is None:
            raise TLSError("mcTLS server requires an identity (certificate + key)")
        super().__init__(config, is_client=False)
        self.mode = mode
        self.topology_policy = topology_policy
        self.verify_middleboxes = verify_middleboxes
        self._session_cache = session_cache
        self._ticket_manager = ticket_manager
        self._client_ticket_support = False
        self._session_id = b""
        self.resumed = False
        self.key_transport: ms.KeyTransport = ms.KeyTransport.DHE
        self._state = _State.WAIT_CLIENT_HELLO
        self._server_random = ms.make_random()
        self._server_secret = ms.make_secret()  # S_S
        self._client_random: Optional[bytes] = None
        self._dh: Optional[DHKeyPair] = None
        self._endpoint_secret: Optional[bytes] = None
        self._endpoint_keys: Optional[mk.EndpointKeys] = None
        self.topology: Optional[SessionTopology] = None
        self.approved_topology: Optional[SessionTopology] = None
        self._mboxes: Dict[int, _MiddleboxState] = {}
        self._reader_halves: Dict[int, bytes] = {}
        self._writer_halves: Dict[int, bytes] = {}
        self._client_reader_halves: Dict[int, bytes] = {}
        self._client_writer_halves: Dict[int, bytes] = {}
        # Record-framing negotiation: a valid ClientHello offer is
        # accepted by echoing it verbatim in the ServerHello; resumed
        # sessions always fall back to the default framing (field keys
        # travel only in the full handshake's key material flight).
        self.negotiated_framing = frm.MCTLS_DEFAULT
        self._field_schemas: Sequence = ()
        self._framing_echo: Optional[bytes] = None
        # context_id -> per-field-index FieldKeys (tuple, schema order).
        self._field_keys: Dict[int, tuple] = {}

    # -- message handling -----------------------------------------------------

    def _handle_handshake_message(self, msg_type: int, body: bytes, raw: bytes) -> None:
        if msg_type == tls_msgs.CLIENT_HELLO and self._state is _State.WAIT_CLIENT_HELLO:
            self.transcript.add(ms.TAG_CLIENT_HELLO, raw)
            self._on_client_hello(tls_msgs.ClientHello.decode(body))
        elif self._state is _State.WAIT_CLIENT_FLIGHT:
            self._on_client_flight_message(msg_type, body, raw)
        else:
            raise TLSError(
                f"unexpected handshake message {msg_type} in state {self._state.name}",
                ALERT_UNEXPECTED_MESSAGE,
            )

    def _on_client_flight_message(self, msg_type: int, body: bytes, raw: bytes) -> None:
        if self.resumed and msg_type not in (
            tls_msgs.MIDDLEBOX_KEY_MATERIAL,
            tls_msgs.FINISHED,
        ):
            # The abbreviated client flight is key re-distribution +
            # Finished only; certs/key exchanges here mean confusion or
            # mischief.
            raise TLSError(
                f"unexpected handshake message {msg_type} in resumed client flight",
                ALERT_UNEXPECTED_MESSAGE,
            )
        if msg_type == tls_msgs.MIDDLEBOX_HELLO:
            hello = mm.MiddleboxHello.decode(body)
            self.transcript.add(ms.tag_mbox_hello(hello.mbox_id), raw)
            self._mbox(hello.mbox_id).random = hello.random
        elif msg_type == tls_msgs.MIDDLEBOX_CERTIFICATE:
            cert_msg = mm.MiddleboxCertificateMessage.decode(body)
            self.transcript.add(ms.tag_mbox_cert(cert_msg.mbox_id), raw)
            self._on_middlebox_certificate(cert_msg)
        elif msg_type == tls_msgs.MIDDLEBOX_KEY_EXCHANGE:
            ke = mm.MiddleboxKeyExchange.decode(body)
            self.transcript.add(ms.tag_mbox_ke(ke.mbox_id, ke.direction), raw)
            self._on_middlebox_key_exchange(ke)
        elif msg_type == tls_msgs.CLIENT_KEY_EXCHANGE:
            self.transcript.add(ms.TAG_CLIENT_KE, raw)
            self._on_client_key_exchange(tls_msgs.ClientKeyExchange.decode(body))
        elif msg_type == tls_msgs.MIDDLEBOX_KEY_MATERIAL:
            self._on_client_key_material(mm.MiddleboxKeyMaterial.decode(body), raw)
        elif msg_type == tls_msgs.FINISHED:
            self.transcript.add(ms.TAG_CLIENT_FINISHED, raw)
            self._on_client_finished(tls_msgs.Finished.decode(body))
        else:
            raise TLSError(
                f"unexpected handshake message {msg_type} in client flight",
                ALERT_UNEXPECTED_MESSAGE,
            )

    def _mbox(self, mbox_id: int) -> _MiddleboxState:
        try:
            return self._mboxes[mbox_id]
        except KeyError:
            raise TLSError(f"message from undeclared middlebox {mbox_id}") from None

    # -- flight 1 ---------------------------------------------------------------

    def _on_client_hello(self, hello: tls_msgs.ClientHello) -> None:
        self._client_random = hello.random
        ext = hello.find_extension(tls_msgs.EXT_MIDDLEBOX_LIST)
        if ext is None:
            raise TLSError("ClientHello lacks the MiddleboxListExtension")
        kt_ext = hello.find_extension(mm.EXT_MCTLS_KEY_TRANSPORT)
        if kt_ext is not None:
            if len(kt_ext) != 1:
                raise TLSError("malformed key transport extension")
            try:
                self.key_transport = ms.KeyTransport(kt_ext[0])
            except ValueError:
                raise TLSError(f"unknown key transport {kt_ext[0]}") from None
        framing_ext = hello.find_extension(mm.EXT_MCTLS_FRAMING)
        offered_framing = None
        offered_schemas = ()
        if framing_ext is not None:
            framing_id, offered_schemas = mm.decode_framing_offer(framing_ext)
            try:
                offered_framing = frm.framing_by_id(framing_id)
            except frm.FramingError as exc:
                raise TLSError(str(exc)) from None
            if not offered_framing.carries_context_id:
                raise TLSError("offered framing cannot carry mcTLS records")
        self.topology = SessionTopology.decode(ext)
        self.approved_topology = (
            self.topology_policy(self.topology)
            if self.topology_policy is not None
            else self.topology
        )
        self._mboxes = {
            m.mbox_id: _MiddleboxState(mbox_id=m.mbox_id, name=m.name)
            for m in self.topology.middleboxes
        }

        suite = next(
            (
                self.config.suite_for_id(sid)
                for sid in hello.cipher_suites
                if self.config.suite_for_id(sid) is not None
            ),
            None,
        )
        if suite is None:
            raise TLSError("no mutually supported cipher suite")
        self.negotiated_suite = suite
        self.records.set_suite(suite)

        if self._try_ticket_resumption(hello):
            return

        cached = self._lookup_resumable_session(hello)
        if cached is not None:
            self._resume_session(cached)
            return

        # Full handshake: never echo the client-proposed id; issue a fresh
        # one iff this session will be cacheable.
        if self._session_cache is not None and self._session_cacheable():
            self._session_id = new_session_id()

        extensions = [(mm.EXT_MCTLS_MODE, bytes([int(self.mode)]))]
        if offered_framing is not None and offered_framing is not frm.MCTLS_DEFAULT:
            # Accept by echoing the offer verbatim — the echo is also the
            # single point on the path where middleboxes learn the
            # session's framing and field schemas.
            self.negotiated_framing = offered_framing
            self._field_schemas = offered_schemas
            self._framing_echo = bytes(framing_ext)
            extensions.append((mm.EXT_MCTLS_FRAMING, self._framing_echo))
        self._send_handshake(
            tls_msgs.ServerHello(
                random=self._server_random,
                session_id=self._session_id,
                cipher_suite=suite.suite_id,
                extensions=extensions,
            ),
            tag=ms.TAG_SERVER_HELLO,
        )
        self._send_handshake(
            tls_msgs.CertificateMessage(chain=self.config.identity.chain),
            tag=ms.TAG_SERVER_CERT,
        )
        self._send_server_key_exchange()
        self._send_handshake(tls_msgs.ServerHelloDone(), tag=ms.TAG_SERVER_HELLO_DONE)
        self._state = _State.WAIT_CLIENT_FLIGHT

    # -- resumption --------------------------------------------------------------

    def _session_cacheable(self) -> bool:
        """A session is resumable only if the server granted the client's
        topology verbatim.

        On resumption the client alone re-distributes (full) context keys,
        so a session where the policy withheld some grant must go through
        the full contributory handshake every time — otherwise resumption
        would widen middlebox access beyond what the server approved.
        """
        return self.approved_topology.encode() == self.topology.encode()

    def _try_ticket_resumption(self, hello: tls_msgs.ClientHello) -> bool:
        """Resume from a client-presented ticket, statelessly.

        The sealed state carries the originally *granted* topology, mode
        and key transport; every one of them — plus the current policy,
        via :meth:`_session_cacheable` — must match this ClientHello
        verbatim, so a ticket can never widen middlebox access, not even
        one minted before a policy change.  Any defect falls back to the
        full handshake silently.
        """
        ext = hello.find_extension(tls_msgs.EXT_SESSION_TICKET)
        if ext is None:
            return False
        self._client_ticket_support = True
        if self._ticket_manager is None or not ext or not hello.session_id:
            return False
        try:
            kind, payload = self._ticket_manager.unseal(ext)
            if kind != self._ticket_kind:
                raise TicketError("ticket sealed for a different protocol")
            state = self._decode_ticket_payload(payload)
        except TicketError:
            return False
        if state.cipher_suite_id != self.negotiated_suite.suite_id:
            return False
        if state.topology_bytes != self.topology.encode():
            return False
        if not self._session_cacheable():
            return False
        if state.mode != int(self.mode) or state.key_transport != int(
            self.key_transport
        ):
            return False
        self._resume_session(
            dataclasses.replace(state, session_id=bytes(hello.session_id))
        )
        return True

    def _maybe_send_new_session_ticket(self) -> None:
        """Issue a ticket on a completing full handshake — but only when
        the session would be cacheable at all (topology granted verbatim);
        a policy-narrowed session must renegotiate in full every time,
        whether resumption is stateful or stateless."""
        if self._ticket_manager is None or not self._client_ticket_support:
            return
        if not self._session_cacheable():
            return
        ticket = self._ticket_manager.seal(
            self._ticket_kind, self._encode_ticket_payload()
        )
        # Untagged: NewSessionTicket stays out of the canonical transcript
        # (the client mirrors this), so Finished hashes are unchanged.
        self._send_handshake(
            tls_msgs.NewSessionTicket(
                lifetime_hint=int(self._ticket_manager.lifetime), ticket=ticket
            )
        )

    # Which ticket kind this stack seals/accepts; the delegation stack
    # overrides all three so its tickets can never cross into mcTLS.
    _ticket_kind = KIND_MCTLS

    def _decode_ticket_payload(self, payload: bytes) -> ms.McTLSSessionState:
        return ms.decode_ticket_state(payload)

    def _encode_ticket_payload(self) -> bytes:
        return ms.encode_ticket_state(
            ms.McTLSSessionState(
                session_id=b"",
                endpoint_secret=self._endpoint_secret,
                cipher_suite_id=self.negotiated_suite.suite_id,
                mode=int(self.mode),
                key_transport=int(self.key_transport),
                topology_bytes=self.topology.encode(),
            )
        )

    def _lookup_resumable_session(
        self, hello: tls_msgs.ClientHello
    ) -> Optional[ms.McTLSSessionState]:
        """Cached state iff the proposed session id can be honored.

        Every mismatch — unknown/evicted/expired id, different suite,
        changed topology, changed policy, changed mode or key transport —
        returns None and the caller falls back to a full handshake.
        """
        if self._session_cache is None or not hello.session_id:
            return None
        cached = self._session_cache.get(bytes(hello.session_id))
        if not isinstance(cached, ms.McTLSSessionState):
            return None
        if cached.cipher_suite_id != self.negotiated_suite.suite_id:
            return None
        if cached.topology_bytes != self.topology.encode():
            return None  # client proposes a different middlebox/context setup
        if not self._session_cacheable():
            return None  # current policy no longer grants the full topology
        if cached.mode != int(self.mode) or cached.key_transport != int(
            self.key_transport
        ):
            return None
        return cached

    def _resume_session(self, cached: ms.McTLSSessionState) -> None:
        """Abbreviated handshake: echo the id, skip certs/key exchange and
        derive everything from the cached endpoint secret + fresh randoms."""
        self.resumed = True
        self._session_id = cached.session_id
        self._endpoint_secret = cached.endpoint_secret
        self._endpoint_keys = mk.derive_endpoint_keys(
            self._endpoint_secret, self._client_random, self._server_random
        )
        self.records.set_endpoint_keys(self._endpoint_keys)
        for ctx_id in self.topology.context_ids:
            self.records.install_context_keys(
                ctx_id,
                mk.resumption_context_keys(
                    self._endpoint_secret,
                    self._client_random,
                    self._server_random,
                    ctx_id,
                ),
            )

        self._send_handshake(
            tls_msgs.ServerHello(
                random=self._server_random,
                session_id=cached.session_id,  # explicit echo = resumption
                cipher_suite=self.negotiated_suite.suite_id,
                extensions=[(mm.EXT_MCTLS_MODE, bytes([int(self.mode)]))],
            ),
            tag=ms.TAG_SERVER_HELLO,
        )
        # Anything the abbreviated flow must add before the server's
        # Finished (the delegation stack sends fresh warrants + key
        # material here); plain mcTLS sends nothing.
        self._send_resumption_flight()
        # Server finishes first in the abbreviated flow.
        verify = ks.finished_verify_data(
            self._endpoint_secret,
            ks.LABEL_SERVER_FINISHED,
            self.transcript.hash_over(self._resumed_order_server()),
        )
        self._send_change_cipher_spec()
        self.records.activate_write()
        self._send_handshake(
            tls_msgs.Finished(verify_data=verify), tag=ms.TAG_SERVER_FINISHED
        )
        self._state = _State.WAIT_CLIENT_FLIGHT

    def _send_resumption_flight(self) -> None:
        """Subclass hook: extra abbreviated-flow messages after the
        ServerHello, covered by the (overridden) resumed order."""

    # -- canonical transcript orders (delegation stack overrides) -----------

    def _order_t1(self) -> "list[str]":
        return ms.canonical_order_t1(self.topology, self.mode, self.key_transport)

    def _order_t2(self) -> "list[str]":
        return ms.canonical_order_t2(self.topology, self.mode, self.key_transport)

    def _resumed_order_server(self) -> "list[str]":
        return ms.resumed_order_server_finished()

    def _resumed_order_client(self) -> "list[str]":
        return ms.resumed_order_client_finished(self.topology)

    def _send_server_key_exchange(self) -> None:
        group = self.config.dh_group
        self._dh = group.generate_keypair()
        params = tls_msgs.ServerKeyExchange(
            dh_p=group.p,
            dh_g=group.g,
            dh_public=self._dh.public_bytes,
            signature=b"",
        )
        signed = self._client_random + self._server_random + params.params_bytes()
        params.signature = self.config.identity.key.sign(signed)
        self._send_handshake(params, tag=ms.TAG_SERVER_KE)

    # -- client flight ---------------------------------------------------------------

    def _on_middlebox_certificate(self, message: mm.MiddleboxCertificateMessage) -> None:
        state = self._mbox(message.mbox_id)
        if not message.chain:
            raise TLSError("middlebox sent an empty certificate chain", ALERT_BAD_CERTIFICATE)
        if self._server_verifies_middleboxes():
            try:
                verify_chain(
                    message.chain,
                    self.config.trusted_roots,
                    expected_subject=state.name,
                )
            except Exception as exc:
                raise TLSError(
                    f"middlebox {state.name!r} certificate verification failed: {exc}",
                    ALERT_BAD_CERTIFICATE,
                ) from exc
        state.chain = message.chain

    def _server_verifies_middleboxes(self) -> bool:
        # In client-key-distribution mode the server has relinquished
        # middlebox control entirely (Table 3: server Asym Verify = 0).
        return (
            self.verify_middleboxes
            and self.config.verify_certificates
            and self.mode is not ms.HandshakeMode.CLIENT_KEY_DIST
        )

    def _on_middlebox_key_exchange(self, ke: mm.MiddleboxKeyExchange) -> None:
        state = self._mbox(ke.mbox_id)
        if state.random is None or not state.chain:
            raise TLSError("middlebox key exchange before its hello/certificate")
        endpoint_random = (
            self._client_random if ke.direction == mm.TOWARD_CLIENT else self._server_random
        )
        if self._server_verifies_middleboxes():
            signed = ke.signed_bytes(state.random, endpoint_random)
            if not state.chain[0].public_key.verify(signed, ke.signature):
                raise TLSError(
                    f"middlebox {state.name!r} key exchange signature invalid",
                    ALERT_DECRYPT_ERROR,
                )
        if ke.direction == mm.TOWARD_CLIENT:
            state.ke_to_client = ke
        else:
            state.ke_to_server = ke

    def _on_client_key_exchange(self, kx: tls_msgs.ClientKeyExchange) -> None:
        group = self.config.dh_group
        client_public = group.public_from_bytes(kx.dh_public)
        premaster = self._dh.combine(client_public)
        pairwise_es = mk.derive_pairwise(premaster, self._client_random, self._server_random)
        self._endpoint_secret = pairwise_es.secret
        self._endpoint_keys = mk.derive_endpoint_keys(
            self._endpoint_secret, self._client_random, self._server_random
        )
        self.records.set_endpoint_keys(self._endpoint_keys)
        self._setup_negotiated_framing()

    def _setup_negotiated_framing(self) -> None:
        """Derive per-field MAC keys (endpoint secret — middleboxes can
        never forge fields they were not granted) and arm the negotiated
        framing; both take effect at the CCS boundary."""
        if self.negotiated_framing is frm.MCTLS_DEFAULT:
            return
        if self.negotiated_framing.field_macs:
            for schema in self._field_schemas:
                self._field_keys[schema.context_id] = mk.derive_field_keys(
                    self._endpoint_secret,
                    self._client_random,
                    self._server_random,
                    schema,
                )
        self.records.set_framing(
            self.negotiated_framing, self._field_schemas, self._field_keys
        )

    def _on_client_key_material(self, mkm: mm.MiddleboxKeyMaterial, raw: bytes) -> None:
        if mkm.sender != mm.SENDER_CLIENT:
            raise TLSError("server received its own key material back")
        self.transcript.add(ms.tag_client_mkm(mkm.target), raw)
        if self.resumed:
            if mkm.target == ENDPOINT_TARGET:
                raise TLSError(
                    "endpoint key material has no place in a resumed handshake"
                )
            return  # middlebox re-keying; transcript only
        if mkm.target != ENDPOINT_TARGET:
            return  # addressed to a middlebox; transcript only
        if self._endpoint_keys is None:
            raise TLSError("client key material before ClientKeyExchange")
        endpoint_dir = self._endpoint_keys.c2s
        try:
            plaintext = mk.authenc_open(
                self.negotiated_suite, endpoint_dir.enc, endpoint_dir.mac, mkm.sealed
            )
        except CipherError as exc:
            raise TLSError(f"client key material failed to open: {exc}") from exc
        for share in mm.decode_key_shares(plaintext):
            self._client_reader_halves[share.context_id] = share.reader_material
            self._client_writer_halves[share.context_id] = share.writer_material

    def _handle_change_cipher_spec(self) -> None:
        if self._state is not _State.WAIT_CLIENT_FLIGHT or self._endpoint_keys is None:
            raise TLSError("unexpected ChangeCipherSpec", ALERT_UNEXPECTED_MESSAGE)
        self.records.activate_read()

    def _on_client_finished(self, finished: tls_msgs.Finished) -> None:
        if self.resumed:
            self._on_resumed_client_finished(finished)
            return
        self._check_middlebox_flights_complete()
        expected = ks.finished_verify_data(
            self._endpoint_secret,
            ks.LABEL_CLIENT_FINISHED,
            self.transcript.hash_over(self._order_t1()),
        )
        if finished.verify_data != expected:
            raise TLSError("client Finished verification failed", ALERT_DECRYPT_ERROR)

        self._finish_key_setup()

        self._maybe_send_new_session_ticket()
        self._send_change_cipher_spec()
        self.records.activate_write()
        verify = ks.finished_verify_data(
            self._endpoint_secret,
            ks.LABEL_SERVER_FINISHED,
            self.transcript.hash_over(self._order_t2()),
        )
        self._send_handshake(tls_msgs.Finished(verify_data=verify))
        self._state = _State.CONNECTED
        self.handshake_complete = True
        self._cache_session()
        self._emit(
            ms.McTLSHandshakeComplete(
                cipher_suite=self.negotiated_suite.name,
                mode=self.mode,
                topology=self.topology,
            )
        )

    def _on_resumed_client_finished(self, finished: tls_msgs.Finished) -> None:
        """Close the abbreviated handshake (our CCS/Finished already went
        out with the ServerHello)."""
        expected = ks.finished_verify_data(
            self._endpoint_secret,
            ks.LABEL_CLIENT_FINISHED,
            self.transcript.hash_over(self._resumed_order_client()),
        )
        if finished.verify_data != expected:
            raise TLSError("client Finished verification failed", ALERT_DECRYPT_ERROR)
        self._state = _State.CONNECTED
        self.handshake_complete = True
        self._emit(
            ms.McTLSHandshakeComplete(
                cipher_suite=self.negotiated_suite.name,
                mode=self.mode,
                topology=self.topology,
                resumed=True,
            )
        )

    def _finish_key_setup(self) -> None:
        """Distribute (if this mode requires it) and install context keys
        once the client's Finished has verified.  The delegation stack
        overrides this to send per-middlebox delegated key material."""
        if self.mode is ms.HandshakeMode.DEFAULT:
            self._generate_and_send_key_material()
            self._install_combined_context_keys()
        else:
            self._install_ckd_context_keys()

    def _cache_session(self) -> None:
        """Make a completed full handshake resumable."""
        if self._session_cache is None or not self._session_id:
            return
        self._session_cache.put(
            self._session_id,
            ms.McTLSSessionState(
                session_id=self._session_id,
                endpoint_secret=self._endpoint_secret,
                cipher_suite_id=self.negotiated_suite.suite_id,
                mode=int(self.mode),
                key_transport=int(self.key_transport),
                topology_bytes=self.topology.encode(),
            ),
        )

    def _check_middlebox_flights_complete(self) -> None:
        for state in self._mboxes.values():
            if state.random is None or not state.chain:
                raise TLSError(f"incomplete handshake flight from middlebox {state.mbox_id}")
            if self.key_transport is ms.KeyTransport.RSA:
                continue  # no key exchanges in RSA transport
            if state.ke_to_client is None:
                raise TLSError(f"incomplete handshake flight from middlebox {state.mbox_id}")
            if self.mode is ms.HandshakeMode.DEFAULT and state.ke_to_server is None:
                raise TLSError(
                    f"middlebox {state.mbox_id} sent no server-directed key exchange"
                )

    # -- server key material (default mode) -----------------------------------------

    def _generate_and_send_key_material(self) -> None:
        for ctx_id in self.topology.context_ids:
            self._reader_halves[ctx_id] = mk.partial_reader_key(
                self._server_secret, self._server_random, ctx_id
            )
            self._writer_halves[ctx_id] = mk.partial_writer_key(
                self._server_secret, self._server_random, ctx_id
            )

        suite = self.negotiated_suite
        group = self.config.dh_group
        for mbox in self.topology.middleboxes:
            state = self._mboxes[mbox.mbox_id]
            if self.key_transport is ms.KeyTransport.DHE:
                peer_public = group.public_from_bytes(state.ke_to_server.dh_public)
                ps = self._dh.combine(peer_public)
                state.pairwise = mk.derive_pairwise(ps, self._server_random, state.random)

            shares = []
            for ctx in self.approved_topology.contexts:
                permission = ctx.permission_for(mbox.mbox_id)
                if not permission.can_read:
                    continue
                shares.append(
                    mm.ContextKeyShare(
                        context_id=ctx.context_id,
                        reader_material=self._reader_halves[ctx.context_id],
                        writer_material=(
                            self._writer_halves[ctx.context_id]
                            if permission.can_write
                            else b""
                        ),
                    )
                )
            encoded_shares = mm.encode_key_shares(shares)
            if self.key_transport is ms.KeyTransport.RSA:
                sealed = mk.rsa_hybrid_seal(suite, state.chain[0].public_key, encoded_shares)
            else:
                sealed = mk.authenc_seal(
                    suite, state.pairwise.enc, state.pairwise.mac, encoded_shares
                )
            self._send_handshake(
                mm.MiddleboxKeyMaterial(
                    sender=mm.SENDER_SERVER, target=mbox.mbox_id, sealed=sealed
                ),
                tag=ms.tag_server_mkm(mbox.mbox_id),
            )

        all_shares = [
            mm.ContextKeyShare(
                context_id=ctx_id,
                reader_material=self._reader_halves[ctx_id],
                writer_material=self._writer_halves[ctx_id],
            )
            for ctx_id in self.topology.context_ids
        ]
        endpoint_dir = self._endpoint_keys.s2c
        sealed = mk.authenc_seal(
            suite, endpoint_dir.enc, endpoint_dir.mac, mm.encode_key_shares(all_shares)
        )
        self._send_handshake(
            mm.MiddleboxKeyMaterial(
                sender=mm.SENDER_SERVER, target=ENDPOINT_TARGET, sealed=sealed
            ),
            tag=ms.tag_server_mkm(ENDPOINT_TARGET),
        )

    # -- context key installation -------------------------------------------------

    def _install_combined_context_keys(self) -> None:
        for ctx_id in self.topology.context_ids:
            if (
                ctx_id not in self._client_reader_halves
                or not self._client_reader_halves[ctx_id]
            ):
                raise TLSError(f"client sent no key material for context {ctx_id}")
            keys = mk.combine_context_keys(
                self._client_reader_halves[ctx_id],
                self._reader_halves[ctx_id],
                self._client_writer_halves[ctx_id],
                self._writer_halves[ctx_id],
                self._client_random,
                self._server_random,
            )
            self.records.install_context_keys(ctx_id, keys)

    def _install_ckd_context_keys(self) -> None:
        for ctx_id in self.topology.context_ids:
            keys = mk.ckd_context_keys(
                self._endpoint_secret, self._client_random, self._server_random, ctx_id
            )
            self.records.install_context_keys(ctx_id, keys)
