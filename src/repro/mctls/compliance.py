"""Table 4: requirement compliance of mcTLS and the competing proposals.

The paper scores each proposal against its five requirements (§3.1):

* **R1** Entity authentication — endpoints can authenticate each other
  and all middleboxes.
* **R2** Data secrecy — only endpoints and trusted middleboxes read/write.
* **R3** Data integrity & authentication — unauthorized modification is
  detectable.
* **R4** Explicit control & visibility — middleboxes join only with both
  endpoints' consent and are always visible.
* **R5** Least privilege — middleboxes get minimum necessary access.

This module encodes Table 4 as data (with the paper's per-cell rationale)
so the benchmark can print it and tests can assert it — and so the
*mcTLS* row can be cross-checked against behaviours the test suite
actually demonstrates.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List


class Compliance(Enum):
    FULL = "full"  # ● in the paper
    PARTIAL = "partial"  # ◌ in the paper
    NONE = "none"  # blank

    @property
    def symbol(self) -> str:
        return {"full": "●", "partial": "◌", "none": " "}[self.value]


@dataclass(frozen=True)
class ProposalRow:
    name: str
    r1: Compliance
    r2: Compliance
    r3: Compliance
    r4: Compliance
    r5: Compliance
    rationale: str

    def cells(self) -> List[Compliance]:
        return [self.r1, self.r2, self.r3, self.r4, self.r5]


F, P, N = Compliance.FULL, Compliance.PARTIAL, Compliance.NONE

TABLE4: List[ProposalRow] = [
    ProposalRow(
        "mcTLS", F, F, F, F, F,
        "Endpoints authenticate all parties, contexts bound read/write "
        "access, three-MAC scheme detects modification, contributory keys "
        "require both endpoints' consent, per-context permissions give "
        "least privilege.",
    ),
    ProposalRow(
        "Custom Certificate", N, N, N, N, N,
        "The server (and often the client) is unaware of the middlebox; "
        "full read/write access; no guarantees past the first hop.",
    ),
    ProposalRow(
        "Proxy Certificate Flag", P, N, N, P, N,
        "Client authenticates and opts into the proxy per connection, but "
        "cannot authenticate the server; the server is unaware; full "
        "access.",
    ),
    ProposalRow(
        "Session Key Out-of-Band", F, F, P, N, N,
        "Client authenticates both proxy and server and the session is "
        "encrypted end-to-end, but handing over the session key grants "
        "unrestricted, undetectable modification power.",
    ),
    ProposalRow(
        "Custom Browser", N, N, N, N, N,
        "Equivalent to the custom-certificate approach baked into a "
        "browser build.",
    ),
    ProposalRow(
        "Proxy Server Extension", P, P, P, P, N,
        "The client must trust the proxy's claims about the server "
        "certificate and cipher suite; proxy invisible to the server; "
        "full access.",
    ),
]


def compliance_matrix() -> Dict[str, List[str]]:
    """name → [R1..R5] symbols, for rendering."""
    return {row.name: [c.symbol for c in row.cells()] for row in TABLE4}


def mctls_meets_all_requirements() -> bool:
    return all(c is Compliance.FULL for c in TABLE4[0].cells())
