"""Multi-context TLS (mcTLS) — the paper's primary contribution.

mcTLS extends the TLS 1.2 substrate (:mod:`repro.tls`) with:

* **encryption contexts** — independently keyed slices of the application
  data stream, each with per-middlebox READ / WRITE / NONE permissions
  (:mod:`repro.mctls.contexts`);
* **contributory context keys** — client and server each contribute half
  of every context key and distribute the halves to middleboxes they
  approve of (:mod:`repro.mctls.keys`);
* **the endpoint-writer-reader record protocol** — three MACs per record
  so endpoints detect legal and illegal modifications, writers detect
  illegal modifications, and readers detect third-party modifications
  (:mod:`repro.mctls.record`);
* **the extended handshake** with middlebox hellos, certificates, signed
  ephemeral DH key exchanges and encrypted ``MiddleboxKeyMaterial``
  messages, in both the default and the client-key-distribution modes
  (:mod:`repro.mctls.client` / ``server`` / ``middlebox``).
"""

from repro.mctls.contexts import (
    ContextDefinition,
    MiddleboxInfo,
    Permission,
    SessionTopology,
    restrict_topology,
)
from repro.mctls.client import McTLSClient
from repro.mctls.fallback import FallbackClient
from repro.mctls.middlebox import McTLSMiddlebox
from repro.mctls.server import McTLSServer
from repro.mctls.session import (
    HandshakeMode,
    KeyTransport,
    McTLSApplicationData,
    McTLSHandshakeComplete,
    McTLSSessionState,
)

__all__ = [
    "ContextDefinition",
    "FallbackClient",
    "HandshakeMode",
    "KeyTransport",
    "McTLSApplicationData",
    "McTLSClient",
    "McTLSHandshakeComplete",
    "McTLSMiddlebox",
    "McTLSServer",
    "McTLSSessionState",
    "MiddleboxInfo",
    "Permission",
    "SessionTopology",
    "restrict_topology",
]
