"""mcTLS-specific handshake messages.

These extend the TLS message set (they use private-range handshake type
numbers and flow inside ordinary handshake records):

* ``MiddleboxHello`` — a middlebox's random value;
* ``MiddleboxCertificateMessage`` — its certificate chain;
* ``MiddleboxKeyExchange`` — a signed ephemeral DH public key, one
  towards each endpoint (two separate key pairs prevent small-subgroup
  attacks, §3.5 step 3);
* ``MiddleboxKeyMaterial`` — (partial) context keys AuthEnc'd under the
  pairwise endpoint↔middlebox key, or under ``K_endpoints`` when
  addressed to the opposite endpoint.

A middlebox's hello/certificate/key-exchange flight is propagated to
*both* endpoints so both can authenticate every middlebox and include the
same messages in their transcript hashes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.crypto.certs import Certificate
from repro.mctls.contexts import FieldSchema
from repro.mctls.keys import MAC_KEY_LEN, FieldKeys
from repro.tls import messages as tls_msgs
from repro.wire import DecodeError, Reader, Writer

# Senders / targets for key material.
SENDER_CLIENT = 1
SENDER_SERVER = 2

# Direction tags for middlebox key exchanges.
TOWARD_CLIENT = 1
TOWARD_SERVER = 2

# Handshake-mode values (negotiated via ServerHello extension).
EXT_MCTLS_MODE = 0xFF02
MODE_DEFAULT = 0
MODE_CLIENT_KEY_DIST = 1
MODE_DELEGATION = 2  # mdTLS: warrants instead of per-middlebox key dist

# Key-transport selection for MiddleboxKeyMaterial (ClientHello extension).
# DHE is the paper's design (Figure 1); RSA is the shortcut its evaluated
# prototype used (§5, at the cost of forward secrecy).
EXT_MCTLS_KEY_TRANSPORT = 0xFF03
KT_DHE = 0
KT_RSA = 1

# Record-framing negotiation (ClientHello offer, echoed verbatim in the
# ServerHello on acceptance).  The body is ``framing_id(1) ||
# n_schemas(1) || FieldSchema*`` — the client's proposed wire geometry
# plus the per-field sub-context schemas the compact framing carries.
# Absent extension (or no ServerHello echo) means the default framing:
# framing is negotiated, never implied.  Abbreviated (resumption)
# handshakes never echo it — field keys are distributed in the full
# handshake's key material flight, which resumption skips.
EXT_MCTLS_FRAMING = 0xFF04


def encode_framing_offer(framing_id: int, schemas: Sequence[FieldSchema]) -> bytes:
    """Body of the ``EXT_MCTLS_FRAMING`` extension."""
    w = Writer()
    w.u8(framing_id)
    w.u8(len(schemas))
    for schema in schemas:
        w.raw(schema.encode())
    return w.bytes()


def decode_framing_offer(data: bytes):
    """``(framing_id, schemas)`` from an ``EXT_MCTLS_FRAMING`` body."""
    r = Reader(data)
    framing_id = r.u8()
    n_schemas = r.u8()
    schemas = tuple(FieldSchema.decode_from(r) for _ in range(n_schemas))
    r.expect_end()
    seen = [s.context_id for s in schemas]
    if len(set(seen)) != len(seen):
        raise DecodeError("duplicate field schema context ids")
    return framing_id, schemas


@dataclass
class MiddleboxHello:
    mbox_id: int
    random: bytes

    msg_type = tls_msgs.MIDDLEBOX_HELLO

    def encode(self) -> bytes:
        return Writer().u8(self.mbox_id).raw(self.random).bytes()

    @classmethod
    def decode(cls, body: bytes) -> "MiddleboxHello":
        r = Reader(body)
        mbox_id = r.u8()
        random = r.raw(tls_msgs.RANDOM_LEN)
        r.expect_end()
        return cls(mbox_id=mbox_id, random=random)


@dataclass
class MiddleboxCertificateMessage:
    mbox_id: int
    chain: Sequence[Certificate]

    msg_type = tls_msgs.MIDDLEBOX_CERTIFICATE

    def encode(self) -> bytes:
        inner = Writer()
        for cert in self.chain:
            inner.vec24(cert.to_bytes())
        return Writer().u8(self.mbox_id).vec24(inner.bytes()).bytes()

    @classmethod
    def decode(cls, body: bytes) -> "MiddleboxCertificateMessage":
        r = Reader(body)
        mbox_id = r.u8()
        inner = Reader(r.vec24())
        r.expect_end()
        chain = []
        while not inner.exhausted:
            chain.append(Certificate.from_bytes(inner.vec24()))
        return cls(mbox_id=mbox_id, chain=tuple(chain))


@dataclass
class MiddleboxKeyExchange:
    """``Sign_{PK_M}(DH_M+)`` towards one endpoint."""

    mbox_id: int
    direction: int  # TOWARD_CLIENT or TOWARD_SERVER
    dh_public: bytes
    signature: bytes

    msg_type = tls_msgs.MIDDLEBOX_KEY_EXCHANGE

    def signed_bytes(self, mbox_random: bytes, endpoint_random: bytes) -> bytes:
        """What the middlebox signs: both randoms bind the key to this
        session; the direction byte binds it to one endpoint."""
        return (
            endpoint_random
            + mbox_random
            + bytes([self.direction])
            + self.dh_public
        )

    def encode(self) -> bytes:
        return (
            Writer()
            .u8(self.mbox_id)
            .u8(self.direction)
            .vec16(self.dh_public)
            .vec16(self.signature)
            .bytes()
        )

    @classmethod
    def decode(cls, body: bytes) -> "MiddleboxKeyExchange":
        r = Reader(body)
        mbox_id = r.u8()
        direction = r.u8()
        if direction not in (TOWARD_CLIENT, TOWARD_SERVER):
            raise DecodeError(f"invalid key exchange direction {direction}")
        dh_public = r.vec16()
        signature = r.vec16()
        r.expect_end()
        return cls(
            mbox_id=mbox_id,
            direction=direction,
            dh_public=dh_public,
            signature=signature,
        )


# -- key material ----------------------------------------------------------


@dataclass
class ContextKeyShare:
    """(Partial or full) key material for one context.

    ``reader_material`` is present when the target may read the context;
    ``writer_material`` additionally when it may write.
    """

    context_id: int
    reader_material: bytes = b""
    writer_material: bytes = b""

    def encode(self) -> bytes:
        return (
            Writer()
            .u8(self.context_id)
            .vec8(self.reader_material)
            .vec8(self.writer_material)
            .bytes()
        )

    @classmethod
    def decode_from(cls, r: Reader) -> "ContextKeyShare":
        return cls(
            context_id=r.u8(),
            reader_material=r.vec8(),
            writer_material=r.vec8(),
        )


# Marker byte introducing the optional field-key block after the context
# key shares inside a sealed MiddleboxKeyMaterial blob.  When no field
# keys travel (every default-framing session) the block is absent and
# the sealed bytes are identical to what the repo produced before the
# framing seam existed — pinned by the frozen golden transcripts.
FIELD_KEY_BLOCK = 0xF1


def encode_key_shares(
    shares: Sequence[ContextKeyShare],
    field_keys=None,
) -> bytes:
    """Key-share blob, optionally carrying per-field MAC keys.

    ``field_keys`` maps ``context_id -> {field_index: FieldKeys}`` —
    only the fields the target middlebox holds a write grant for (for a
    middlebox target) or every field (for the opposite endpoint's copy).
    """
    w = Writer()
    w.u8(len(shares))
    for share in shares:
        w.raw(share.encode())
    if field_keys:
        w.u8(FIELD_KEY_BLOCK)
        w.u8(len(field_keys))
        for context_id in sorted(field_keys):
            entries = field_keys[context_id]
            w.u8(context_id)
            w.u8(len(entries))
            for index in sorted(entries):
                fk = entries[index]
                w.u8(index)
                w.raw(fk.mac_c2s)
                w.raw(fk.mac_s2c)
    return w.bytes()


def decode_key_shares_ex(data: bytes):
    """``(shares, field_keys)`` — the inverse of :func:`encode_key_shares`."""
    r = Reader(data)
    count = r.u8()
    shares = [ContextKeyShare.decode_from(r) for _ in range(count)]
    field_keys = {}
    if not r.exhausted:
        marker = r.u8()
        if marker != FIELD_KEY_BLOCK:
            raise DecodeError(f"invalid key share trailer marker 0x{marker:02x}")
        n_contexts = r.u8()
        for _ in range(n_contexts):
            context_id = r.u8()
            n_entries = r.u8()
            entries = {}
            for _ in range(n_entries):
                index = r.u8()
                mac_c2s = r.raw(MAC_KEY_LEN)
                mac_s2c = r.raw(MAC_KEY_LEN)
                entries[index] = FieldKeys(mac_c2s=mac_c2s, mac_s2c=mac_s2c)
            field_keys[context_id] = entries
    r.expect_end()
    return shares, field_keys


def decode_key_shares(data: bytes) -> List[ContextKeyShare]:
    return decode_key_shares_ex(data)[0]


@dataclass
class MiddleboxKeyMaterial:
    """AuthEnc'd context key shares from one endpoint to one target.

    ``target`` is a middlebox id, or ``0xFF`` for the opposite endpoint
    (whose copy exists so it can verify what was distributed and include
    it in the transcript).
    """

    sender: int  # SENDER_CLIENT or SENDER_SERVER
    target: int  # mbox_id or contexts.ENDPOINT_TARGET
    sealed: bytes

    msg_type = tls_msgs.MIDDLEBOX_KEY_MATERIAL

    def encode(self) -> bytes:
        return Writer().u8(self.sender).u8(self.target).vec16(self.sealed).bytes()

    @classmethod
    def decode(cls, body: bytes) -> "MiddleboxKeyMaterial":
        r = Reader(body)
        sender = r.u8()
        if sender not in (SENDER_CLIENT, SENDER_SERVER):
            raise DecodeError(f"invalid key material sender {sender}")
        target = r.u8()
        sealed = r.vec16()
        r.expect_end()
        return cls(sender=sender, target=target, sealed=sealed)
