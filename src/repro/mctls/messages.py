"""mcTLS-specific handshake messages.

These extend the TLS message set (they use private-range handshake type
numbers and flow inside ordinary handshake records):

* ``MiddleboxHello`` — a middlebox's random value;
* ``MiddleboxCertificateMessage`` — its certificate chain;
* ``MiddleboxKeyExchange`` — a signed ephemeral DH public key, one
  towards each endpoint (two separate key pairs prevent small-subgroup
  attacks, §3.5 step 3);
* ``MiddleboxKeyMaterial`` — (partial) context keys AuthEnc'd under the
  pairwise endpoint↔middlebox key, or under ``K_endpoints`` when
  addressed to the opposite endpoint.

A middlebox's hello/certificate/key-exchange flight is propagated to
*both* endpoints so both can authenticate every middlebox and include the
same messages in their transcript hashes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.crypto.certs import Certificate
from repro.tls import messages as tls_msgs
from repro.wire import DecodeError, Reader, Writer

# Senders / targets for key material.
SENDER_CLIENT = 1
SENDER_SERVER = 2

# Direction tags for middlebox key exchanges.
TOWARD_CLIENT = 1
TOWARD_SERVER = 2

# Handshake-mode values (negotiated via ServerHello extension).
EXT_MCTLS_MODE = 0xFF02
MODE_DEFAULT = 0
MODE_CLIENT_KEY_DIST = 1
MODE_DELEGATION = 2  # mdTLS: warrants instead of per-middlebox key dist

# Key-transport selection for MiddleboxKeyMaterial (ClientHello extension).
# DHE is the paper's design (Figure 1); RSA is the shortcut its evaluated
# prototype used (§5, at the cost of forward secrecy).
EXT_MCTLS_KEY_TRANSPORT = 0xFF03
KT_DHE = 0
KT_RSA = 1


@dataclass
class MiddleboxHello:
    mbox_id: int
    random: bytes

    msg_type = tls_msgs.MIDDLEBOX_HELLO

    def encode(self) -> bytes:
        return Writer().u8(self.mbox_id).raw(self.random).bytes()

    @classmethod
    def decode(cls, body: bytes) -> "MiddleboxHello":
        r = Reader(body)
        mbox_id = r.u8()
        random = r.raw(tls_msgs.RANDOM_LEN)
        r.expect_end()
        return cls(mbox_id=mbox_id, random=random)


@dataclass
class MiddleboxCertificateMessage:
    mbox_id: int
    chain: Sequence[Certificate]

    msg_type = tls_msgs.MIDDLEBOX_CERTIFICATE

    def encode(self) -> bytes:
        inner = Writer()
        for cert in self.chain:
            inner.vec24(cert.to_bytes())
        return Writer().u8(self.mbox_id).vec24(inner.bytes()).bytes()

    @classmethod
    def decode(cls, body: bytes) -> "MiddleboxCertificateMessage":
        r = Reader(body)
        mbox_id = r.u8()
        inner = Reader(r.vec24())
        r.expect_end()
        chain = []
        while not inner.exhausted:
            chain.append(Certificate.from_bytes(inner.vec24()))
        return cls(mbox_id=mbox_id, chain=tuple(chain))


@dataclass
class MiddleboxKeyExchange:
    """``Sign_{PK_M}(DH_M+)`` towards one endpoint."""

    mbox_id: int
    direction: int  # TOWARD_CLIENT or TOWARD_SERVER
    dh_public: bytes
    signature: bytes

    msg_type = tls_msgs.MIDDLEBOX_KEY_EXCHANGE

    def signed_bytes(self, mbox_random: bytes, endpoint_random: bytes) -> bytes:
        """What the middlebox signs: both randoms bind the key to this
        session; the direction byte binds it to one endpoint."""
        return (
            endpoint_random
            + mbox_random
            + bytes([self.direction])
            + self.dh_public
        )

    def encode(self) -> bytes:
        return (
            Writer()
            .u8(self.mbox_id)
            .u8(self.direction)
            .vec16(self.dh_public)
            .vec16(self.signature)
            .bytes()
        )

    @classmethod
    def decode(cls, body: bytes) -> "MiddleboxKeyExchange":
        r = Reader(body)
        mbox_id = r.u8()
        direction = r.u8()
        if direction not in (TOWARD_CLIENT, TOWARD_SERVER):
            raise DecodeError(f"invalid key exchange direction {direction}")
        dh_public = r.vec16()
        signature = r.vec16()
        r.expect_end()
        return cls(
            mbox_id=mbox_id,
            direction=direction,
            dh_public=dh_public,
            signature=signature,
        )


# -- key material ----------------------------------------------------------


@dataclass
class ContextKeyShare:
    """(Partial or full) key material for one context.

    ``reader_material`` is present when the target may read the context;
    ``writer_material`` additionally when it may write.
    """

    context_id: int
    reader_material: bytes = b""
    writer_material: bytes = b""

    def encode(self) -> bytes:
        return (
            Writer()
            .u8(self.context_id)
            .vec8(self.reader_material)
            .vec8(self.writer_material)
            .bytes()
        )

    @classmethod
    def decode_from(cls, r: Reader) -> "ContextKeyShare":
        return cls(
            context_id=r.u8(),
            reader_material=r.vec8(),
            writer_material=r.vec8(),
        )


def encode_key_shares(shares: Sequence[ContextKeyShare]) -> bytes:
    w = Writer()
    w.u8(len(shares))
    for share in shares:
        w.raw(share.encode())
    return w.bytes()


def decode_key_shares(data: bytes) -> List[ContextKeyShare]:
    r = Reader(data)
    count = r.u8()
    shares = [ContextKeyShare.decode_from(r) for _ in range(count)]
    r.expect_end()
    return shares


@dataclass
class MiddleboxKeyMaterial:
    """AuthEnc'd context key shares from one endpoint to one target.

    ``target`` is a middlebox id, or ``0xFF`` for the opposite endpoint
    (whose copy exists so it can verify what was distributed and include
    it in the transcript).
    """

    sender: int  # SENDER_CLIENT or SENDER_SERVER
    target: int  # mbox_id or contexts.ENDPOINT_TARGET
    sealed: bytes

    msg_type = tls_msgs.MIDDLEBOX_KEY_MATERIAL

    def encode(self) -> bytes:
        return Writer().u8(self.sender).u8(self.target).vec16(self.sealed).bytes()

    @classmethod
    def decode(cls, body: bytes) -> "MiddleboxKeyMaterial":
        r = Reader(body)
        sender = r.u8()
        if sender not in (SENDER_CLIENT, SENDER_SERVER):
            raise DecodeError(f"invalid key material sender {sender}")
        target = r.u8()
        sealed = r.vec16()
        r.expect_end()
        return cls(sender=sender, target=target, sealed=sealed)
