"""The mcTLS middlebox (§3.4–§3.5).

A middlebox relays two TCP byte streams (client side and server side) and
participates in the mcTLS handshake flowing through it:

1. It reads the ClientHello to find its own entry in the middlebox list
   and learn the proposed contexts/permissions, then forwards it.
2. When the server's flight passes back through, it snoops the
   ServerHello (cipher suite, mode) and ServerKeyExchange (DH group and
   the server's ephemeral public key), generates its *two* ephemeral DH
   key pairs in that group, and injects its own flight — MiddleboxHello,
   certificate and signed key exchange(s) — before ServerHelloDone.
3. It injects the same flight toward the server right after forwarding
   the ClientKeyExchange (the paper's piggybacking on that flight), from
   which it also snoops the client's DH public key.
4. It decrypts the two ``MiddleboxKeyMaterial`` messages addressed to it
   (forwarding every key material message so the endpoints can include
   them in their transcripts), combines the halves, and installs context
   keys for exactly the contexts both endpoints granted.
5. After ChangeCipherSpec it processes application records per context:
   read-only contexts are verified and surfaced; writable contexts may be
   transformed (re-MACed with the writer/reader keys, original endpoint
   MAC forwarded); inaccessible records pass through untouched — but
   still consume a sequence number, since sequence numbers are global.

The middlebox cannot verify Finished messages (it never holds
``K_endpoints``) — exactly the paper's design.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto
from typing import Callable, Dict, List, Optional

from repro import framing as frm
from repro.core.events import ContextData
from repro.crypto.certs import verify_chain
from repro.crypto.fastcipher import KEYSTREAM_POOL
from repro.crypto.dh import DHGroup, DHKeyPair
from repro.mctls import keys as mk
from repro.mctls import messages as mm
from repro.mctls import record as mrec
from repro.mctls import session as ms
from repro.mctls.contexts import (
    ENDPOINT_CONTEXT_ID,
    Permission,
    SessionTopology,
)
from repro.tls import messages as tls_msgs
from repro.tls import record as rec
from repro.tls.ciphersuites import CipherError, CipherSuite
from repro.tls.connection import Event, TLSConfig, TLSError
from repro.wire import DecodeError

# A transformer takes (direction, context_id, payload) and returns the
# payload to forward (possibly modified) — only consulted for contexts
# the middlebox can write.
Transformer = Callable[[str, int, bytes], bytes]

# An observer is notified of readable payloads it cannot modify.
Observer = Callable[[str, int, bytes], None]


@dataclass
class MiddleboxHandshakeComplete(Event):
    topology: SessionTopology
    permissions: Dict[int, Permission]
    mode: ms.HandshakeMode


# ContextData now lives in the shared vocabulary (repro.core.events);
# re-exported here because this is where middlebox drivers import it from.
__all__ = ["ContextData", "McTLSMiddlebox", "MiddleboxHandshakeComplete"]


class _Side(Enum):
    CLIENT = auto()
    SERVER = auto()


class McTLSMiddlebox:
    """A sans-I/O mcTLS middlebox relay.

    ``transformer`` is invoked for every record in a writable context and
    returns the payload to forward; ``observer`` is invoked for readable
    records.  Both default to pass-through.
    """

    def __init__(
        self,
        name: str,
        config: TLSConfig,
        transformer: Optional[Transformer] = None,
        observer: Optional[Observer] = None,
        verify_server: bool = False,
    ):
        if config.identity is None:
            raise TLSError("middlebox requires an identity (certificate + key)")
        self.name = name
        self.config = config
        self.transformer = transformer
        self.observer = observer
        self.verify_server = verify_server

        # Onward buffers are chunk lists (appended per record or per
        # coalesced burst span); data_to_*_views() hands them straight to
        # scatter-gather transports.
        self._to_client: List[bytes] = []
        self._to_server: List[bytes] = []
        self._from_client = bytearray()
        self._from_server = bytearray()
        self._hs_client = tls_msgs.HandshakeBuffer()
        self._hs_server = tls_msgs.HandshakeBuffer()
        self._events: List[Event] = []

        self.mbox_id: Optional[int] = None
        self.topology: Optional[SessionTopology] = None
        self.suite: Optional[CipherSuite] = None
        self.mode: ms.HandshakeMode = ms.HandshakeMode.DEFAULT
        self.key_transport: ms.KeyTransport = ms.KeyTransport.DHE
        self.resumed = False
        self._proposed_session_id = b""
        self.handshake_complete = False
        self.closed = False

        # Instrumentation plane: None (the default) costs one attribute
        # load per hook site; attach a repro.core.Instruments to enable.
        self.instruments = None

        self._random = ms.make_random()
        self._client_random: Optional[bytes] = None
        self._server_random: Optional[bytes] = None
        self._group: Optional[DHGroup] = None
        self._dh_to_client: Optional[DHKeyPair] = None
        self._dh_to_server: Optional[DHKeyPair] = None
        self._pairwise_client: Optional[mk.PairwiseKeys] = None
        self._pairwise_server: Optional[mk.PairwiseKeys] = None
        self._client_shares: Optional[Dict[int, mm.ContextKeyShare]] = None
        self._server_shares: Optional[Dict[int, mm.ContextKeyShare]] = None
        self._keys_installed = False
        self.permissions: Dict[int, Permission] = {}

        self._flight: Optional[List[bytes]] = None  # framed own messages
        self._c2s_protected = False
        self._s2c_protected = False
        # Wire framing after the CCS boundary, snooped from the server's
        # echo of the client's framing offer (the single point on the
        # path where the negotiated geometry is visible).
        self._wire_framing: frm.RecordFraming = frm.MCTLS_DEFAULT
        self._field_schemas: tuple = ()
        self._proc_c2s: Optional[mrec.MiddleboxRecordProcessor] = None
        self._proc_s2c: Optional[mrec.MiddleboxRecordProcessor] = None
        # The burst fast path re-MACs a whole wakeup's worth of records
        # through open_burst(); it is only safe when per-record semantics
        # live in *this* class.  A subclass that overrides
        # _handle_protected_record (e.g. the fault harness's malicious
        # reader) gets the sequential path so its override still sees
        # every record.
        self._burst_capable = (
            type(self)._handle_protected_record
            is McTLSMiddlebox._handle_protected_record
        )

    # -- relay interface -----------------------------------------------------

    def receive_from_client(self, data: bytes) -> List[Event]:
        return self._receive(_Side.CLIENT, data)

    def receive_from_server(self, data: bytes) -> List[Event]:
        return self._receive(_Side.SERVER, data)

    def data_to_client(self) -> bytes:
        out = b"".join(self._to_client)
        self._to_client.clear()
        return out

    def data_to_server(self) -> bytes:
        out = b"".join(self._to_server)
        self._to_server.clear()
        return out

    def data_to_client_views(self) -> List[bytes]:
        """Pending client-bound output as buffers for scatter-gather writes."""
        views, self._to_client = self._to_client, []
        return views

    def data_to_server_views(self) -> List[bytes]:
        """Pending server-bound output as buffers for scatter-gather writes."""
        views, self._to_server = self._to_server, []
        return views

    # -- record plumbing --------------------------------------------------------

    def _receive(self, side: _Side, data: bytes) -> List[Event]:
        if self.closed:
            return []
        buf = self._from_client if side is _Side.CLIENT else self._from_server
        buf += data
        try:
            if self._burst_capable and self._protected(side):
                self._receive_burst(side, buf)
            elif self._wire_framing is frm.MCTLS_DEFAULT:
                for content_type, context_id, fragment, raw in mrec.split_records(buf):
                    self._handle_record(side, content_type, context_id, fragment, raw)
            else:
                # A negotiated non-default framing switches at the CCS
                # boundary, so a buffer can mix framings (default-framed
                # CCS followed by a compact-framed Finished).  Drain one
                # record at a time, re-selecting the framing between
                # records: _handle_record flips the protection flag when
                # it processes the CCS.
                while True:
                    fr = (
                        self._wire_framing
                        if self._protected(side)
                        else frm.MCTLS_DEFAULT
                    )
                    item = mrec.split_one(buf, fr)
                    if item is None:
                        break
                    self._handle_record(side, *item)
        except (mrec.McTLSRecordError, DecodeError, CipherError) as exc:
            self.closed = True
            if getattr(exc, "where", None) is None:
                exc.where = "middlebox"
            if self.instruments is not None:
                self.instruments.inc("errors.fatal")
                mac = getattr(exc, "mac", None)
                if mac is not None:
                    self.instruments.inc(f"mac.fail.{mac}")
            raise TLSError(f"middlebox relay failure: {exc}") from exc
        events, self._events = self._events, []
        return events

    def _out_for(self, side: _Side) -> List[bytes]:
        """The chunk list carrying bytes *onward* from ``side``."""
        return self._to_server if side is _Side.CLIENT else self._to_client

    def _receive_burst(self, side: _Side, buf: bytearray) -> None:
        """Process one wakeup's worth of buffered records as bursts.

        Runs of protected APPLICATION_DATA records are verified (and
        where needed re-MACed) through the batched processor path with
        one fused XOR per run; interleaved control records (alerts, CCS)
        fall back to the per-record handler at their exact position.  A
        framing error surfaces only after every record before it has
        been relayed, matching split_records' sequential order.
        """
        fr = self._wire_framing
        burst, entries, deferred = mrec.split_burst(buf, fr)
        i = 0
        n = len(entries)
        while i < n:
            if entries[i][0] != rec.APPLICATION_DATA:
                content_type, context_id, start, end = entries[i]
                raw = burst[start:end]
                self._handle_record(
                    side,
                    content_type,
                    context_id,
                    memoryview(raw)[fr.header_len :],
                    raw,
                )
                i += 1
                continue
            j = i + 1
            while j < n and entries[j][0] == rec.APPLICATION_DATA:
                j += 1
            self._relay_app_burst(side, burst, entries[i:j])
            i = j
        if deferred is not None:
            raise deferred

    def _relay_app_burst(self, side: _Side, burst: bytes, entries) -> None:
        """Relay a run of protected APPLICATION_DATA records.

        Contiguous records forwarded verbatim coalesce into one slice of
        the burst (one output chunk instead of one copy per record);
        modified records are rebuilt in place between the coalesced
        spans.  Event and output order per record is identical to the
        sequential handler, including on mid-burst failure: the pending
        verbatim span is flushed before a MAC error propagates, exactly
        as the per-record loop would already have forwarded it.
        """
        processor = self._proc_c2s if side is _Side.CLIENT else self._proc_s2c
        direction = mk.C2S if side is _Side.CLIENT else mk.S2C
        instruments = self.instruments
        if instruments is not None:
            instruments.inc("relay.records", len(entries))
        out = self._out_for(side)
        if processor.opaque:
            # No readable context at all: the whole run forwards as one
            # verbatim slice; only the global sequence numbers advance.
            processor.skip_burst(len(entries))
            out.append(burst[entries[0][2] : entries[-1][3]])
            if instruments is not None:
                KEYSTREAM_POOL.publish_to(instruments)
            return
        run_start = run_end = -1  # pending verbatim-forward span
        index = 0
        try:
            for opened in processor.open_wire_burst(burst, entries):
                content_type, context_id, start, end = entries[index]
                index += 1
                if opened is None:
                    if run_start < 0:
                        run_start = start
                    run_end = end
                    continue
                payload = opened.payload
                if opened.permission.can_write and self.transformer is not None:
                    new_payload = self.transformer(direction, context_id, payload)
                    if new_payload is None:
                        new_payload = payload
                else:
                    new_payload = payload
                if self.observer is not None:
                    self.observer(direction, context_id, new_payload)
                modified = new_payload != payload
                self._emit(
                    ContextData(
                        direction=direction,
                        context_id=context_id,
                        data=new_payload,
                        permission=opened.permission,
                        modified=modified,
                    )
                )
                if modified:
                    if instruments is not None:
                        instruments.inc("relay.modified")
                    if run_start >= 0:
                        out.append(burst[run_start:run_end])
                        run_start = -1
                    out.append(processor.rebuild_record(opened, new_payload))
                else:
                    if run_start < 0:
                        run_start = start
                    run_end = end
        finally:
            if run_start >= 0:
                out.append(burst[run_start:run_end])
        if instruments is not None:
            KEYSTREAM_POOL.publish_to(instruments)

    def _protected(self, side: _Side) -> bool:
        return self._c2s_protected if side is _Side.CLIENT else self._s2c_protected

    def _handle_record(
        self, side: _Side, content_type: int, context_id: int, fragment: bytes, raw: bytes
    ) -> None:
        if self._protected(side):
            self._handle_protected_record(side, content_type, context_id, fragment, raw)
            return

        if content_type == rec.HANDSHAKE:
            hs = self._hs_client if side is _Side.CLIENT else self._hs_server
            hs.feed(fragment)
            while True:
                message = hs.next_message()
                if message is None:
                    break
                msg_type, body, msg_raw = message
                self._handle_handshake_message(side, msg_type, body, msg_raw)
        elif content_type == rec.CHANGE_CIPHER_SPEC:
            self._on_change_cipher_spec(side)
            self._out_for(side).append(raw)
        elif content_type == rec.ALERT:
            self._out_for(side).append(raw)
        else:
            raise mrec.McTLSRecordError(
                "application data before ChangeCipherSpec at middlebox"
            )

    def _handle_protected_record(
        self, side: _Side, content_type: int, context_id: int, fragment: bytes, raw: bytes
    ) -> None:
        processor = self._proc_c2s if side is _Side.CLIENT else self._proc_s2c
        direction = mk.C2S if side is _Side.CLIENT else mk.S2C
        if self.instruments is not None:
            self.instruments.inc("relay.records")
        opened = processor.open_record(content_type, context_id, fragment)
        if opened.payload is None or content_type != rec.APPLICATION_DATA:
            self._out_for(side).append(raw)
            return

        payload = opened.payload
        if opened.permission.can_write and self.transformer is not None:
            new_payload = self.transformer(direction, context_id, payload)
            if new_payload is None:
                new_payload = payload
        else:
            new_payload = payload
        if self.observer is not None:
            self.observer(direction, context_id, new_payload)

        modified = new_payload != payload
        self._emit(
            ContextData(
                direction=direction,
                context_id=context_id,
                data=new_payload,
                permission=opened.permission,
                modified=modified,
            )
        )
        if modified:
            if self.instruments is not None:
                self.instruments.inc("relay.modified")
            self._out_for(side).append(processor.rebuild_record(opened, new_payload))
        else:
            self._out_for(side).append(raw)

    def _emit(self, event: Event) -> None:
        self._events.append(event)

    # -- handshake handling ---------------------------------------------------------

    def _forward_message(self, side: _Side, msg_raw: bytes) -> None:
        header = mrec.encode_header(rec.HANDSHAKE, ENDPOINT_CONTEXT_ID, len(msg_raw))
        self._out_for(side).append(header + msg_raw)

    def _handle_handshake_message(
        self, side: _Side, msg_type: int, body: bytes, msg_raw: bytes
    ) -> None:
        if side is _Side.CLIENT:
            self._handle_from_client(msg_type, body, msg_raw)
        else:
            self._handle_from_server(msg_type, body, msg_raw)

    # ---- client-side messages

    def _handle_from_client(self, msg_type: int, body: bytes, msg_raw: bytes) -> None:
        if msg_type == tls_msgs.CLIENT_HELLO:
            self._on_client_hello(tls_msgs.ClientHello.decode(body))
            self._forward_message(_Side.CLIENT, msg_raw)
        elif msg_type == tls_msgs.CLIENT_KEY_EXCHANGE:
            self._forward_message(_Side.CLIENT, msg_raw)
            self._on_client_key_exchange(tls_msgs.ClientKeyExchange.decode(body))
        elif msg_type == tls_msgs.MIDDLEBOX_KEY_MATERIAL:
            mkm = mm.MiddleboxKeyMaterial.decode(body)
            self._forward_message(_Side.CLIENT, msg_raw)
            if mkm.sender == mm.SENDER_CLIENT and mkm.target == self.mbox_id:
                self._on_own_key_material(_Side.CLIENT, mkm)
        else:
            # Other middleboxes' flights and anything we don't interpret.
            self._forward_message(_Side.CLIENT, msg_raw)

    def _on_client_hello(self, hello: tls_msgs.ClientHello) -> None:
        ext = hello.find_extension(tls_msgs.EXT_MIDDLEBOX_LIST)
        if ext is None:
            raise TLSError("ClientHello lacks the MiddleboxListExtension")
        kt_ext = hello.find_extension(mm.EXT_MCTLS_KEY_TRANSPORT)
        if kt_ext is not None and len(kt_ext) == 1:
            self.key_transport = ms.KeyTransport(kt_ext[0])
        self.topology = SessionTopology.decode(ext)
        entry = self.topology.middlebox_by_name(self.name)
        if entry is None:
            raise TLSError(
                f"middlebox {self.name!r} is not in the session's middlebox list"
            )
        self.mbox_id = entry.mbox_id
        self._client_random = hello.random
        self._proposed_session_id = hello.session_id

    def _on_client_key_exchange(self, kx: tls_msgs.ClientKeyExchange) -> None:
        if self._group is None:
            raise TLSError("ClientKeyExchange before the server's parameters")
        if self.key_transport is ms.KeyTransport.DHE:
            client_public = self._group.public_from_bytes(kx.dh_public)
            ps = self._dh_to_client.combine(client_public)
            self._pairwise_client = mk.derive_pairwise(
                ps, self._client_random, self._random
            )
        # Piggyback our flight toward the server on this flight (Figure 1).
        self._inject_flight(_Side.CLIENT)

    # ---- server-side messages

    def _handle_from_server(self, msg_type: int, body: bytes, msg_raw: bytes) -> None:
        if msg_type == tls_msgs.SERVER_HELLO:
            self._on_server_hello(tls_msgs.ServerHello.decode(body))
            self._forward_message(_Side.SERVER, msg_raw)
        elif msg_type == tls_msgs.CERTIFICATE:
            self._on_server_certificate(tls_msgs.CertificateMessage.decode(body))
            self._forward_message(_Side.SERVER, msg_raw)
        elif msg_type == tls_msgs.SERVER_KEY_EXCHANGE:
            self._on_server_key_exchange(tls_msgs.ServerKeyExchange.decode(body))
            self._forward_message(_Side.SERVER, msg_raw)
        elif msg_type == tls_msgs.SERVER_HELLO_DONE:
            # Inject our client-directed flight before ServerHelloDone.
            self._inject_flight(_Side.SERVER)
            self._forward_message(_Side.SERVER, msg_raw)
        elif msg_type == tls_msgs.MIDDLEBOX_KEY_MATERIAL:
            mkm = mm.MiddleboxKeyMaterial.decode(body)
            self._forward_message(_Side.SERVER, msg_raw)
            if mkm.sender == mm.SENDER_SERVER and mkm.target == self.mbox_id:
                self._on_own_key_material(_Side.SERVER, mkm)
        else:
            self._forward_message(_Side.SERVER, msg_raw)

    def _on_server_hello(self, hello: tls_msgs.ServerHello) -> None:
        from repro.tls.ciphersuites import suite_by_id

        self.suite = suite_by_id(hello.cipher_suite)
        self._server_random = hello.random
        mode_ext = hello.find_extension(mm.EXT_MCTLS_MODE)
        if mode_ext is None or len(mode_ext) != 1:
            raise TLSError("server did not negotiate an mcTLS mode")
        self.mode = ms.HandshakeMode(mode_ext[0])
        # A ServerHello echoing the client's proposed session id means the
        # abbreviated flow: no certs/key exchanges pass through; our fresh
        # context keys arrive sealed to our certificate key instead.
        self.resumed = bool(self._proposed_session_id) and (
            hello.session_id == self._proposed_session_id
        )
        framing_ext = hello.find_extension(mm.EXT_MCTLS_FRAMING)
        if framing_ext is not None and not self.resumed:
            framing_id, schemas = mm.decode_framing_offer(framing_ext)
            try:
                self._wire_framing = frm.framing_by_id(framing_id)
            except frm.FramingError as exc:
                raise TLSError(str(exc)) from None
            self._field_schemas = tuple(schemas)
        self._proc_c2s = mrec.MiddleboxRecordProcessor(self.suite, mk.C2S)
        self._proc_s2c = mrec.MiddleboxRecordProcessor(self.suite, mk.S2C)
        if self._wire_framing is not frm.MCTLS_DEFAULT:
            self._proc_c2s.set_framing(self._wire_framing, self._field_schemas)
            self._proc_s2c.set_framing(self._wire_framing, self._field_schemas)

    def _on_server_certificate(self, message: tls_msgs.CertificateMessage) -> None:
        if self.verify_server and self.config.trusted_roots:
            try:
                verify_chain(message.chain, self.config.trusted_roots)
            except Exception as exc:
                raise TLSError(f"server certificate rejected by middlebox: {exc}") from exc

    def _on_server_key_exchange(self, kx: tls_msgs.ServerKeyExchange) -> None:
        self._group = DHGroup(name="negotiated", p=kx.dh_p, g=kx.dh_g)
        server_public = self._group.public_from_bytes(kx.dh_public)
        if self.key_transport is ms.KeyTransport.DHE:
            # Two distinct ephemeral key pairs, one per endpoint (§3.5).
            self._dh_to_client = self._group.generate_keypair()
            if self.mode is ms.HandshakeMode.DEFAULT:
                self._dh_to_server = self._group.generate_keypair()
                ps = self._dh_to_server.combine(server_public)
                self._pairwise_server = mk.derive_pairwise(
                    ps, self._server_random, self._random
                )
        self._build_flight()

    # ---- own flight

    def _build_flight(self) -> None:
        """Frame our hello/certificate/key-exchange messages once; the same
        bytes go to both endpoints so their transcripts agree."""
        key = self.config.identity.key
        messages = [
            mm.MiddleboxHello(mbox_id=self.mbox_id, random=self._random),
            mm.MiddleboxCertificateMessage(
                mbox_id=self.mbox_id, chain=self.config.identity.chain
            ),
        ]
        if self.key_transport is ms.KeyTransport.RSA:
            # No key exchanges: endpoints seal material to our certificate.
            self._flight = [tls_msgs.frame(m.msg_type, m.encode()) for m in messages]
            return
        ke_client = mm.MiddleboxKeyExchange(
            mbox_id=self.mbox_id,
            direction=mm.TOWARD_CLIENT,
            dh_public=self._dh_to_client.public_bytes,
            signature=b"",
        )
        ke_client.signature = key.sign(
            ke_client.signed_bytes(self._random, self._client_random)
        )
        messages.append(ke_client)
        if self.mode is ms.HandshakeMode.DEFAULT:
            ke_server = mm.MiddleboxKeyExchange(
                mbox_id=self.mbox_id,
                direction=mm.TOWARD_SERVER,
                dh_public=self._dh_to_server.public_bytes,
                signature=b"",
            )
            ke_server.signature = key.sign(
                ke_server.signed_bytes(self._random, self._server_random)
            )
            messages.append(ke_server)
        self._flight = [tls_msgs.frame(m.msg_type, m.encode()) for m in messages]

    def _inject_flight(self, side: _Side) -> None:
        if self._flight is None:
            raise TLSError("middlebox flight not ready (no ServerKeyExchange seen)")
        for msg_raw in self._flight:
            self._forward_message(side, msg_raw)

    # ---- key material

    def _on_own_key_material(self, side: _Side, mkm: mm.MiddleboxKeyMaterial) -> None:
        if self.key_transport is ms.KeyTransport.RSA or self.resumed:
            plaintext = mk.rsa_hybrid_open(
                self.suite, self.config.identity.key, mkm.sealed
            )
        else:
            pairwise = (
                self._pairwise_client if side is _Side.CLIENT else self._pairwise_server
            )
            if pairwise is None:
                raise TLSError("key material before pairwise key establishment")
            plaintext = mk.authenc_open(self.suite, pairwise.enc, pairwise.mac, mkm.sealed)
        decoded, field_keys = mm.decode_key_shares_ex(plaintext)
        shares = {s.context_id: s for s in decoded}
        if side is _Side.CLIENT:
            self._client_shares = shares
        else:
            self._server_shares = shares
        # Field keys ride only the client's key material (they derive
        # from the endpoint secret, so one distributor suffices); holding
        # a field's key IS the write grant for that field.
        for context_id, entries in field_keys.items():
            self._proc_c2s.install_field_keys(context_id, entries)
            self._proc_s2c.install_field_keys(context_id, entries)
        self._maybe_install_keys()

    def _maybe_install_keys(self) -> None:
        if self._keys_installed:
            return
        if self.mode is ms.HandshakeMode.DEFAULT and not self.resumed:
            if self._client_shares is None or self._server_shares is None:
                return
            self._install_combined_keys()
        else:
            # CKD mode and resumed sessions: the client alone distributes
            # full key blocks.
            if self._client_shares is None:
                return
            self._install_full_keys()
        self._keys_installed = True
        self.handshake_complete = True
        self._emit(
            MiddleboxHandshakeComplete(
                topology=self.topology, permissions=dict(self.permissions), mode=self.mode
            )
        )

    def _install_combined_keys(self) -> None:
        """Combine client and server halves; access materialises only for
        contexts where *both* endpoints provided material (R4)."""
        for ctx in self.topology.contexts:
            ctx_id = ctx.context_id
            c_share = self._client_shares.get(ctx_id)
            s_share = self._server_shares.get(ctx_id)
            if (
                c_share is None
                or s_share is None
                or not c_share.reader_material
                or not s_share.reader_material
            ):
                self.permissions[ctx_id] = Permission.NONE
                continue
            can_write = bool(c_share.writer_material and s_share.writer_material)
            keys = mk.combine_context_keys(
                c_share.reader_material,
                s_share.reader_material,
                # Writer halves may be absent for read-only grants; the
                # writer keys derived from empty halves are never valid
                # against the endpoints' (who always use real halves).
                c_share.writer_material,
                s_share.writer_material,
                self._client_random,
                self._server_random,
            )
            permission = Permission.WRITE if can_write else Permission.READ
            self.permissions[ctx_id] = permission
            if not can_write:
                # Do not retain derived-from-nothing writer keys.
                keys = mk.ContextKeys(
                    readers=keys.readers,
                    writers=mk.WriterKeys(mac_c2s=b"", mac_s2c=b""),
                )
            self._proc_c2s.install(ctx_id, permission, keys)
            self._proc_s2c.install(ctx_id, permission, keys)

    def _install_full_keys(self) -> None:
        for ctx in self.topology.contexts:
            ctx_id = ctx.context_id
            share = self._client_shares.get(ctx_id)
            if share is None or not share.reader_material:
                self.permissions[ctx_id] = Permission.NONE
                continue
            readers = mk.reader_keys_from_block(share.reader_material)
            if share.writer_material:
                writers = mk.writer_keys_from_block(share.writer_material)
                permission = Permission.WRITE
            else:
                writers = mk.WriterKeys(mac_c2s=b"", mac_s2c=b"")
                permission = Permission.READ
            self.permissions[ctx_id] = permission
            keys = mk.ContextKeys(readers=readers, writers=writers)
            self._proc_c2s.install(ctx_id, permission, keys)
            self._proc_s2c.install(ctx_id, permission, keys)

    # ---- change cipher spec

    def _on_change_cipher_spec(self, side: _Side) -> None:
        if side is _Side.CLIENT:
            self._c2s_protected = True
            self._proc_c2s.activate()
        else:
            self._s2c_protected = True
            self._proc_s2c.activate()
