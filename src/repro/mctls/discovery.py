"""Middlebox discovery (§6.1).

mcTLS assumes the client holds the middlebox list before the handshake;
building that list is orthogonal to the protocol.  The paper sketches
three sources, all implemented here as composable providers:

* **user/administrator configuration** — the user points the client at a
  proxy (:class:`StaticProvider`), or asks for "a nearby <service>"
  resolved from a local service registry, standing in for mDNS/DNS-SD
  (:class:`ServiceRegistry`);
* **content-provider policy** — a DNS-TXT-like lookup mapping server
  names to middleboxes any connection to them should include
  (:class:`ContentProviderPolicy`);
* **network-operator requirements** — DHCP/PDP-style attachment
  configuration mandating middleboxes for everyone on the network
  (:class:`NetworkPolicy`).

:func:`discover` merges all sources in path order (operator boxes sit
nearest the client, then user choices, then content-provider boxes
nearest the server — the conventional deployment layout) and assigns
middlebox ids, producing the list a client feeds into a
:class:`~repro.mctls.contexts.SessionTopology`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.mctls.contexts import MiddleboxInfo


@dataclass(frozen=True)
class DiscoveredMiddlebox:
    """A middlebox candidate before id assignment."""

    name: str
    address: str = ""
    service: str = ""  # e.g. "compression", "ids", "filter"
    source: str = ""  # which provider contributed it


class StaticProvider:
    """Explicit user/administrator configuration (a fixed list)."""

    def __init__(self, middleboxes: Sequence[DiscoveredMiddlebox]):
        self._middleboxes = list(middleboxes)

    def lookup(self, server_name: str) -> List[DiscoveredMiddlebox]:
        return list(self._middleboxes)


class ServiceRegistry:
    """A local-network service registry (stands in for mDNS / DNS-SD).

    Services register themselves; clients ask for a service type and get
    the advertised instances (e.g. "a nearby data compression proxy").
    """

    def __init__(self) -> None:
        self._services: Dict[str, List[DiscoveredMiddlebox]] = {}

    def advertise(self, service: str, name: str, address: str = "") -> None:
        self._services.setdefault(service, []).append(
            DiscoveredMiddlebox(
                name=name, address=address, service=service, source="registry"
            )
        )

    def withdraw(self, service: str, name: str) -> None:
        self._services[service] = [
            m for m in self._services.get(service, []) if m.name != name
        ]

    def find(self, service: str) -> List[DiscoveredMiddlebox]:
        return list(self._services.get(service, []))


class ContentProviderPolicy:
    """Server-side middlebox requirements published alongside the server
    name (the paper suggests DNS as the channel)."""

    def __init__(self) -> None:
        self._records: Dict[str, List[DiscoveredMiddlebox]] = {}

    def publish(self, server_name: str, middleboxes: Sequence[DiscoveredMiddlebox]) -> None:
        self._records[server_name] = [
            DiscoveredMiddlebox(
                name=m.name, address=m.address, service=m.service, source="content-provider"
            )
            for m in middleboxes
        ]

    def lookup(self, server_name: str) -> List[DiscoveredMiddlebox]:
        # Exact name, then wildcard suffix records (like DNS).
        if server_name in self._records:
            return list(self._records[server_name])
        parts = server_name.split(".")
        for i in range(1, len(parts)):
            wildcard = "*." + ".".join(parts[i:])
            if wildcard in self._records:
                return list(self._records[wildcard])
        return []


class NetworkPolicy:
    """Operator-mandated middleboxes delivered at network attachment
    (DHCP option / PDP context in the paper's terms)."""

    def __init__(self, required: Sequence[DiscoveredMiddlebox] = ()):
        self._required = [
            DiscoveredMiddlebox(
                name=m.name, address=m.address, service=m.service, source="operator"
            )
            for m in required
        ]

    def attachment_configuration(self) -> List[DiscoveredMiddlebox]:
        return list(self._required)


def discover(
    server_name: str,
    network: Optional[NetworkPolicy] = None,
    user: Optional[Iterable[DiscoveredMiddlebox]] = None,
    content_provider: Optional[ContentProviderPolicy] = None,
) -> List[MiddleboxInfo]:
    """Assemble the session middlebox list in path order.

    Operator-required boxes first (nearest the client), then user
    selections, then content-provider boxes (nearest the server).
    Duplicate names are collapsed, keeping the first occurrence.
    """
    candidates: List[DiscoveredMiddlebox] = []
    if network is not None:
        candidates.extend(network.attachment_configuration())
    if user is not None:
        candidates.extend(user)
    if content_provider is not None:
        candidates.extend(content_provider.lookup(server_name))

    seen = set()
    middleboxes: List[MiddleboxInfo] = []
    for candidate in candidates:
        if candidate.name in seen:
            continue
        seen.add(candidate.name)
        middleboxes.append(
            MiddleboxInfo(
                mbox_id=len(middleboxes) + 1,
                name=candidate.name,
                address=candidate.address,
            )
        )
    return middleboxes
