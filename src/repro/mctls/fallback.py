"""Graceful fallback from mcTLS to plain TLS (§5.4).

"Finally, we note that clients and servers can easily fall back to
regular TLS if an mcTLS connection cannot be negotiated."

:class:`FallbackClient` tries an mcTLS handshake first; if the attempt
fails in a way that suggests the peer does not speak mcTLS (bad record
version, missing extension, handshake failure alerts), it reports that a
fresh plain-TLS connection should be dialed and builds it.  The two
attempts use separate transport connections, mirroring how browsers
retry with a downgraded protocol.

Note the deliberate asymmetry with security failures: certificate or MAC
verification errors do NOT trigger fallback — downgrading in response to
an active attack would defeat the point.
"""

from __future__ import annotations

from typing import Optional

from repro.mctls.client import McTLSClient
from repro.mctls.contexts import SessionTopology
from repro.tls.client import TLSClient
from repro.tls.connection import (
    ALERT_BAD_CERTIFICATE,
    ALERT_BAD_RECORD_MAC,
    ALERT_DECRYPT_ERROR,
    TLSConfig,
    TLSError,
)

# Alert codes that mean "attack or corruption" — never fall back on these.
_SECURITY_ALERTS = {ALERT_BAD_CERTIFICATE, ALERT_DECRYPT_ERROR, ALERT_BAD_RECORD_MAC}


def is_negotiation_failure(error: TLSError) -> bool:
    """True when the failure looks like "peer does not speak mcTLS"
    rather than a security violation."""
    if error.alert in _SECURITY_ALERTS:
        # One exception: a record-version mismatch surfaces with the
        # bad_record_mac alert but is the canonical "peer speaks plain
        # TLS" symptom.
        return "record version" in str(error)
    return True


class FallbackClient:
    """Drives 'mcTLS, else TLS' connection establishment.

    Usage::

        fallback = FallbackClient(config, topology)
        conn = fallback.connection            # an McTLSClient first
        conn.start_handshake()
        try:
            ... run the handshake over transport #1 ...
        except TLSError as exc:
            if fallback.should_fall_back(exc):
                conn = fallback.fall_back()   # a TLSClient
                ... dial a fresh transport, run a TLS handshake ...
    """

    def __init__(self, config: TLSConfig, topology: SessionTopology, **mctls_kwargs):
        self.config = config
        self.topology = topology
        self._mctls_kwargs = mctls_kwargs
        self.attempts = 0
        self.fell_back = False
        self.connection = self._new_mctls()

    def _new_mctls(self) -> McTLSClient:
        self.attempts += 1
        return McTLSClient(self.config, topology=self.topology, **self._mctls_kwargs)

    def should_fall_back(self, error: TLSError) -> bool:
        return not self.fell_back and is_negotiation_failure(error)

    def fall_back(self) -> TLSClient:
        """Build the plain-TLS connection for the retry."""
        if self.fell_back:
            raise TLSError("already fell back once; refusing to downgrade again")
        self.fell_back = True
        self.attempts += 1
        self.connection = TLSClient(self.config)
        return self.connection


def connect_with_fallback(
    config: TLSConfig,
    topology: SessionTopology,
    dial,
    **mctls_kwargs,
):
    """Convenience driver for in-memory / test transports.

    ``dial()`` must return a fresh (server_like, pump) pair each call,
    where ``pump(client, server_like)`` exchanges bytes until quiet.
    Returns the connected client (mcTLS or TLS).
    """
    fallback = FallbackClient(config, topology, **mctls_kwargs)
    client = fallback.connection
    server, pump = dial()
    client.start_handshake()
    try:
        pump(client, server)
        if client.handshake_complete:
            return client
        raise TLSError("mcTLS handshake did not complete")
    except TLSError as exc:
        if not fallback.should_fall_back(exc):
            raise
    client = fallback.fall_back()
    server, pump = dial()
    client.start_handshake()
    pump(client, server)
    if not client.handshake_complete:
        raise TLSError("fallback TLS handshake did not complete")
    return client
