"""Shared mcTLS session machinery: events, modes, transcripts, base class.

**Transcript canonicalisation.** In TLS the Finished hash covers handshake
messages in the order sent.  In mcTLS, middleboxes inject their flights
into different positions of the client-bound and server-bound streams, so
the two endpoints would observe different orders.  Our implementation
hashes messages in a *canonical* order derived from the session topology
(hellos, server flight, middlebox flights in path order, client key
exchange, key material in target order) — both endpoints can assemble it
independently of arrival order.  This is an implementation choice the
paper leaves open; it preserves the property the Finished exchange is for
(both endpoints saw the same messages).
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, field
from enum import IntEnum
from typing import Dict, List, Optional

from repro.crypto.certs import Certificate
from repro.mctls import messages as mm
from repro.mctls import record as mrec
from repro.mctls.contexts import (
    ENDPOINT_CONTEXT_ID,
    ENDPOINT_TARGET,
    SessionTopology,
)
from repro.tls import messages as tls_msgs
from repro.tls import record as rec
from repro.tls.ciphersuites import CipherSuite
from repro.core.events import (
    AlertReceived,
    ApplicationData,
    ConnectionClosed,
    Event,
    HandshakeComplete,
)
from repro.core.instrument import record_event
from repro.tls.connection import (
    ALERT_BAD_RECORD_MAC,
    ALERT_CLOSE_NOTIFY,
    ALERT_LEVEL_FATAL,
    ALERT_LEVEL_WARNING,
    TLSConfig,
    TLSError,
)
from repro.wire import DecodeError


class HandshakeMode(IntEnum):
    """mcTLS handshake modes (§3.6), plus the mdTLS delegation mode."""

    DEFAULT = mm.MODE_DEFAULT
    CLIENT_KEY_DIST = mm.MODE_CLIENT_KEY_DIST
    DELEGATION = mm.MODE_DELEGATION


class KeyTransport(IntEnum):
    """How MiddleboxKeyMaterial is protected.

    ``DHE`` — pairwise ephemeral Diffie-Hellman with each middlebox
    (the paper's design, Figure 1; forward secret).
    ``RSA`` — hybrid encryption under the middlebox's certificate key
    (the paper's evaluated prototype, §5; no forward secrecy, but the
    middlebox does no DH work and sends no signed key exchanges).
    """

    DHE = mm.KT_DHE
    RSA = mm.KT_RSA


@dataclass
class McTLSHandshakeComplete(HandshakeComplete):
    """The mcTLS refinement of the shared :class:`HandshakeComplete`.

    Subclassing keeps generic drivers working —
    ``isinstance(event, HandshakeComplete)`` matches both — while adding
    the session's negotiated ``mode`` and middlebox/context ``topology``.
    Both are always set by the stack; the defaults exist only because the
    parent class has defaulted fields.
    """

    mode: HandshakeMode = None
    topology: SessionTopology = None


@dataclass
class McTLSSessionState:
    """Everything a resumed mcTLS session must reproduce exactly.

    Stored server-side in a :class:`repro.tls.sessioncache.SessionCache`
    keyed by session id, and client-side keyed by endpoint name.  Beyond
    the plain-TLS master secret, an mcTLS session is defined by its
    middlebox/context topology, handshake mode and key transport — a
    resumption is honored only when all of them match, so a resumed
    session can never widen (or silently change) middlebox access.

    ``middlebox_certs`` is populated client-side only: on resumption the
    client re-distributes fresh context keys by sealing them to each
    middlebox's certificate key (there is no DH exchange to derive
    pairwise keys from in the abbreviated flow).
    """

    session_id: bytes
    endpoint_secret: bytes
    cipher_suite_id: int
    mode: int
    key_transport: int
    topology_bytes: bytes
    middlebox_certs: Dict[int, Certificate] = field(default_factory=dict)


def encode_ticket_state(state: McTLSSessionState) -> bytes:
    """Serialize what an mcTLS session ticket seals: the endpoint secret
    and — the security-critical part — the *full granted topology*, mode
    and key transport.  The server re-checks all of them against the new
    ClientHello before honoring the ticket, so a stateless resumption is
    exactly as narrow as the original grant.  ``middlebox_certs`` are
    deliberately absent: they are the *client's* material (needed to
    re-distribute fresh context keys) and never travel in the ticket."""
    from repro.wire import Writer

    w = Writer()
    w.vec8(state.endpoint_secret)
    w.u16(state.cipher_suite_id)
    w.u8(state.mode)
    w.u8(state.key_transport)
    w.vec16(state.topology_bytes)
    return w.bytes()


def decode_ticket_state(payload: bytes) -> McTLSSessionState:
    from repro.tls.tickets import TicketError
    from repro.wire import Reader

    try:
        r = Reader(payload)
        endpoint_secret = r.vec8()
        cipher_suite_id = r.u16()
        mode = r.u8()
        key_transport = r.u8()
        topology_bytes = r.vec16()
        r.expect_end()
    except DecodeError as exc:
        raise TicketError(f"malformed mcTLS ticket payload: {exc}") from exc
    return McTLSSessionState(
        session_id=b"",
        endpoint_secret=endpoint_secret,
        cipher_suite_id=cipher_suite_id,
        mode=mode,
        key_transport=key_transport,
        topology_bytes=topology_bytes,
    )


@dataclass
class McTLSApplicationData(ApplicationData):
    """Application data received in one context.

    Subclasses the shared :class:`ApplicationData` so generic drivers
    match it.  ``legally_modified`` is True when the endpoint MAC did not
    match — i.e. a writer middlebox (legally) modified the record in
    flight.
    """

    legally_modified: bool = False


# -- transcript -------------------------------------------------------------

TAG_CLIENT_HELLO = "client_hello"
TAG_SERVER_HELLO = "server_hello"
TAG_SERVER_CERT = "server_cert"
TAG_SERVER_KE = "server_ke"
TAG_SERVER_HELLO_DONE = "server_hello_done"
TAG_CLIENT_KE = "client_ke"
TAG_CLIENT_FINISHED = "client_finished"
# Only the abbreviated flow tags the server's Finished: there the server
# finishes *first*, so the client's Finished must cover it.
TAG_SERVER_FINISHED = "server_finished"


def tag_mbox_hello(mbox_id: int) -> str:
    return f"mbox_hello:{mbox_id}"


def tag_mbox_cert(mbox_id: int) -> str:
    return f"mbox_cert:{mbox_id}"


def tag_mbox_ke(mbox_id: int, direction: int) -> str:
    return f"mbox_ke:{mbox_id}:{direction}"


def tag_client_mkm(target: int) -> str:
    return f"client_mkm:{target}"


def tag_server_mkm(target: int) -> str:
    return f"server_mkm:{target}"


class TranscriptStore:
    """Raw handshake messages keyed by canonical tag."""

    def __init__(self) -> None:
        self._messages: Dict[str, bytes] = {}

    def add(self, tag: str, raw: bytes) -> None:
        if tag in self._messages:
            raise TLSError(f"duplicate handshake message for {tag}")
        self._messages[tag] = raw

    def has(self, tag: str) -> bool:
        return tag in self._messages

    def hash_over(self, tags: List[str]) -> bytes:
        """SHA-256 over the concatenation of the tagged messages.

        Raises if any expected message is missing — an endpoint must have
        seen every message the canonical order requires.
        """
        missing = [t for t in tags if t not in self._messages]
        if missing:
            raise TLSError(f"transcript missing messages: {missing}")
        return hashlib.sha256(b"".join(self._messages[t] for t in tags)).digest()


def canonical_order_t1(
    topology: SessionTopology,
    mode: HandshakeMode,
    key_transport: "KeyTransport" = None,
) -> List[str]:
    """Canonical message order covered by the client's Finished."""
    if key_transport is None:
        key_transport = KeyTransport.DHE
    tags = [
        TAG_CLIENT_HELLO,
        TAG_SERVER_HELLO,
        TAG_SERVER_CERT,
        TAG_SERVER_KE,
        TAG_SERVER_HELLO_DONE,
    ]
    for mbox in topology.middleboxes:
        tags.append(tag_mbox_hello(mbox.mbox_id))
        tags.append(tag_mbox_cert(mbox.mbox_id))
        if key_transport is KeyTransport.DHE:
            tags.append(tag_mbox_ke(mbox.mbox_id, mm.TOWARD_CLIENT))
            if mode is HandshakeMode.DEFAULT:
                tags.append(tag_mbox_ke(mbox.mbox_id, mm.TOWARD_SERVER))
    tags.append(TAG_CLIENT_KE)
    for mbox in topology.middleboxes:
        tags.append(tag_client_mkm(mbox.mbox_id))
    tags.append(tag_client_mkm(ENDPOINT_TARGET))
    return tags


def canonical_order_t2(
    topology: SessionTopology,
    mode: HandshakeMode,
    key_transport: "KeyTransport" = None,
) -> List[str]:
    """Canonical message order covered by the server's Finished."""
    tags = canonical_order_t1(topology, mode, key_transport)
    tags.append(TAG_CLIENT_FINISHED)
    if mode is HandshakeMode.DEFAULT:
        for mbox in topology.middleboxes:
            tags.append(tag_server_mkm(mbox.mbox_id))
        tags.append(tag_server_mkm(ENDPOINT_TARGET))
    return tags


def resumed_order_server_finished() -> List[str]:
    """Messages covered by the server's Finished in the abbreviated flow.

    The server finishes immediately after its ServerHello — no
    certificates, key exchanges or middlebox flights exist to cover.
    """
    return [TAG_CLIENT_HELLO, TAG_SERVER_HELLO]


def resumed_order_client_finished(topology: SessionTopology) -> List[str]:
    """Messages covered by the client's Finished in the abbreviated flow.

    Covers the server's Finished plus the fresh per-middlebox key
    material the client re-distributed, so the server detects any
    tampering with (or suppression of) the re-keying messages.
    """
    tags = [TAG_CLIENT_HELLO, TAG_SERVER_HELLO, TAG_SERVER_FINISHED]
    for mbox in topology.middleboxes:
        tags.append(tag_client_mkm(mbox.mbox_id))
    return tags


def make_random() -> bytes:
    return os.urandom(tls_msgs.RANDOM_LEN)


def make_secret() -> bytes:
    return os.urandom(48)


# -- connection base ---------------------------------------------------------


class McTLSConnectionBase:
    """Common endpoint machinery over the mcTLS record layer."""

    def __init__(self, config: TLSConfig, is_client: bool):
        self.config = config
        self.records = mrec.McTLSRecordLayer(is_client=is_client)
        self._handshake_buf = tls_msgs.HandshakeBuffer()
        self.transcript = TranscriptStore()
        # Outgoing bytes as a chunk list: encoders append whole records,
        # data_to_send_views() hands the chunks to scatter-gather writers
        # (sendmsg/writelines) without an intermediate join.
        self._out: List[bytes] = []
        self._events: List[Event] = []
        self.handshake_complete = False
        self.closed = False
        self.resumed = False
        self.negotiated_suite: Optional[CipherSuite] = None
        self.peer_certificate: Optional[Certificate] = None
        # Instrumentation plane: None (the default) costs one attribute
        # load per hook site; attach a repro.core.Instruments to enable.
        self.instruments = None

    # -- transport-facing API ---------------------------------------------

    def start_handshake(self) -> None:
        """Passive side by default; the client subclass overrides."""

    def data_to_send(self) -> bytes:
        data = b"".join(self._out)
        self._out.clear()
        return data

    def data_to_send_views(self) -> List[bytes]:
        """Pending output as a list of buffers for scatter-gather writes.

        The concatenation equals what :meth:`data_to_send` would have
        returned; transports may pass the list straight to
        ``socket.sendmsg`` / ``StreamWriter.writelines``.
        """
        views, self._out = self._out, []
        return views

    def receive_data(self, data: bytes) -> List[Event]:
        if self.closed:
            return self._drain_events()
        self.records.feed(data)
        try:
            for record in self.records.read_burst():
                self._dispatch_record(record)
        except (mrec.McTLSRecordError, DecodeError) as exc:
            if getattr(exc, "where", None) is None:
                exc.where = "endpoint"
            self._count_failure(exc)
            failure = TLSError(str(exc), ALERT_BAD_RECORD_MAC)
            failure.__cause__ = exc  # keep the detection outcome reachable
            self._fail(failure)
        except TLSError as exc:
            self._count_failure(exc)
            self._fail(exc)
        return self._drain_events()

    def receive_bytes(self, data: bytes) -> List[Event]:
        """Historical name for :meth:`receive_data`."""
        return self.receive_data(data)

    def _count_failure(self, exc: Exception) -> None:
        if self.instruments is None:
            return
        self.instruments.inc("errors.fatal")
        if not self.handshake_complete:
            self.instruments.inc("handshake.failed")
        mac = getattr(exc, "mac", None)
        if mac is not None:
            self.instruments.inc(f"mac.fail.{mac}")

    def send_application_data(self, data: bytes, context_id: int = 1) -> None:
        if not self.handshake_complete:
            raise TLSError("cannot send application data before handshake")
        if self.closed:
            raise TLSError("connection is closed")
        if context_id == ENDPOINT_CONTEXT_ID:
            raise TLSError("context 0 is reserved for the endpoints")
        if self.instruments is not None:
            self.instruments.inc("records.out")
            self.instruments.inc(f"context.{context_id}.bytes_out", len(data))
        self._out.append(self.records.encode(rec.APPLICATION_DATA, data, context_id))

    def close(self) -> None:
        if not self.closed:
            self._send_alert(ALERT_LEVEL_WARNING, ALERT_CLOSE_NOTIFY)
            self.closed = True

    # -- internals -----------------------------------------------------------

    def _drain_events(self) -> List[Event]:
        events, self._events = self._events, []
        return events

    def _emit(self, event: Event) -> None:
        if self.instruments is not None:
            record_event(self.instruments, event)
        self._events.append(event)

    def _fail(self, exc: TLSError) -> None:
        if not self.closed:
            self._send_alert(ALERT_LEVEL_FATAL, exc.alert)
            self.closed = True
        raise exc

    def _send_alert(self, level: int, description: int) -> None:
        self._out.append(
            self.records.encode(rec.ALERT, bytes([level, description]), ENDPOINT_CONTEXT_ID)
        )

    def _dispatch_record(self, record: mrec.UnprotectedRecord) -> None:
        if record.content_type == rec.HANDSHAKE:
            self._handshake_buf.feed(record.payload)
            while True:
                message = self._handshake_buf.next_message()
                if message is None:
                    break
                msg_type, body, raw = message
                if self.instruments is not None:
                    self.instruments.inc("handshake.messages_in")
                self._handle_handshake_message(msg_type, body, raw)
        elif record.content_type == rec.CHANGE_CIPHER_SPEC:
            if record.payload != b"\x01":
                raise TLSError("malformed ChangeCipherSpec")
            self._handle_change_cipher_spec()
        elif record.content_type == rec.ALERT:
            self._handle_alert(record.payload)
        elif record.content_type == rec.APPLICATION_DATA:
            if not self.handshake_complete:
                raise TLSError("application data before handshake completion")
            self._emit(
                McTLSApplicationData(
                    data=record.payload,
                    context_id=record.context_id,
                    legally_modified=record.legally_modified,
                )
            )
        else:  # pragma: no cover
            raise TLSError(f"unexpected content type {record.content_type}")

    def _handle_alert(self, payload: bytes) -> None:
        if len(payload) != 2:
            raise TLSError("malformed alert")
        level, description = payload
        self._emit(AlertReceived(level=level, description=description))
        if description == ALERT_CLOSE_NOTIFY or level == ALERT_LEVEL_FATAL:
            self.closed = True
            self._emit(ConnectionClosed())

    def _send_handshake(self, message, tag: Optional[str] = None) -> bytes:
        raw = tls_msgs.frame(message.msg_type, message.encode())
        if tag is not None:
            self.transcript.add(tag, raw)
        if self.instruments is not None:
            self.instruments.inc("handshake.messages_out")
        self._out.append(self.records.encode(rec.HANDSHAKE, raw, ENDPOINT_CONTEXT_ID))
        return raw

    def _send_change_cipher_spec(self) -> None:
        self._out.append(
            self.records.encode(rec.CHANGE_CIPHER_SPEC, b"\x01", ENDPOINT_CONTEXT_ID)
        )

    # -- subclass hooks --------------------------------------------------------

    def _handle_handshake_message(self, msg_type: int, body: bytes, raw: bytes) -> None:
        raise NotImplementedError

    def _handle_change_cipher_spec(self) -> None:
        raise NotImplementedError
