"""Encryption contexts, middlebox descriptors and session topology.

An *encryption context* is a set of symmetric keys controlling who can
read and write the data sent in it (§3.3 of the paper).  The client
declares the contexts and each middlebox's permission for each context in
the ``MiddleboxListExtension`` of its ClientHello; the server sees the
full topology and consents (or not) by choosing which half-keys to
distribute.

Context ID 0 is reserved for the endpoint-only control context that
protects post-handshake handshake records (Finished, alerts); application
contexts are numbered 1..255.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum
from typing import Dict, List, Optional, Sequence

from repro.wire import DecodeError, Reader, Writer

ENDPOINT_CONTEXT_ID = 0
MAX_CONTEXTS = 255
MAX_MIDDLEBOXES = 254
ENDPOINT_TARGET = 0xFF  # "target" value addressing the opposite endpoint


class Permission(IntEnum):
    """A middlebox's access level for one context (§3.4)."""

    NONE = 0
    READ = 1
    WRITE = 2

    @property
    def can_read(self) -> bool:
        return self is not Permission.NONE

    @property
    def can_write(self) -> bool:
        return self is Permission.WRITE


@dataclass(frozen=True)
class MiddleboxInfo:
    """A middlebox entry in the session's middlebox list.

    ``mbox_id`` encodes path order (1 is nearest the client); ``name`` is
    the certified identity the endpoints authenticate; ``address`` is an
    opaque locator (the protocol never interprets it).
    """

    mbox_id: int
    name: str
    address: str = ""

    def __post_init__(self) -> None:
        if not 1 <= self.mbox_id <= MAX_MIDDLEBOXES:
            raise ValueError("middlebox id must be in 1..254")


@dataclass(frozen=True)
class ContextDefinition:
    """One encryption context: id, application-meaningful purpose, and the
    permission granted to each middlebox (missing entries mean NONE)."""

    context_id: int
    purpose: str
    permissions: Dict[int, Permission] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 1 <= self.context_id <= MAX_CONTEXTS:
            raise ValueError("context id must be in 1..255")

    def permission_for(self, mbox_id: int) -> Permission:
        return self.permissions.get(mbox_id, Permission.NONE)


@dataclass(frozen=True)
class SessionTopology:
    """The complete middlebox/context declaration for one session."""

    middleboxes: Sequence[MiddleboxInfo] = ()
    contexts: Sequence[ContextDefinition] = (
        ContextDefinition(context_id=1, purpose="default"),
    )

    def __post_init__(self) -> None:
        mbox_ids = [m.mbox_id for m in self.middleboxes]
        if len(set(mbox_ids)) != len(mbox_ids):
            raise ValueError("duplicate middlebox ids")
        ctx_ids = [c.context_id for c in self.contexts]
        if len(set(ctx_ids)) != len(ctx_ids):
            raise ValueError("duplicate context ids")
        if not self.contexts:
            raise ValueError("at least one context is required")
        known = set(mbox_ids)
        for ctx in self.contexts:
            unknown = set(ctx.permissions) - known
            if unknown:
                raise ValueError(f"permissions reference unknown middleboxes {unknown}")

    # -- lookups ---------------------------------------------------------

    @property
    def context_ids(self) -> List[int]:
        return [c.context_id for c in self.contexts]

    @property
    def middlebox_ids(self) -> List[int]:
        return [m.mbox_id for m in self.middleboxes]

    def context(self, context_id: int) -> ContextDefinition:
        for ctx in self.contexts:
            if ctx.context_id == context_id:
                return ctx
        raise KeyError(f"unknown context {context_id}")

    def middlebox(self, mbox_id: int) -> MiddleboxInfo:
        for mbox in self.middleboxes:
            if mbox.mbox_id == mbox_id:
                return mbox
        raise KeyError(f"unknown middlebox {mbox_id}")

    def middlebox_by_name(self, name: str) -> Optional[MiddleboxInfo]:
        for mbox in self.middleboxes:
            if mbox.name == name:
                return mbox
        return None

    def permissions_of(self, mbox_id: int) -> Dict[int, Permission]:
        """Map context id → permission for one middlebox."""
        return {c.context_id: c.permission_for(mbox_id) for c in self.contexts}

    def readable_contexts(self, mbox_id: int) -> List[int]:
        return [
            c.context_id
            for c in self.contexts
            if c.permission_for(mbox_id).can_read
        ]

    def writable_contexts(self, mbox_id: int) -> List[int]:
        return [
            c.context_id
            for c in self.contexts
            if c.permission_for(mbox_id).can_write
        ]

    # -- wire format -------------------------------------------------------

    def encode(self) -> bytes:
        """Encode as the body of the MiddleboxListExtension."""
        w = Writer()
        w.u8(len(self.middleboxes))
        for mbox in self.middleboxes:
            w.u8(mbox.mbox_id)
            w.string8(mbox.name)
            w.string8(mbox.address)
        w.u8(len(self.contexts))
        for ctx in self.contexts:
            w.u8(ctx.context_id)
            w.string8(ctx.purpose)
            for mbox in self.middleboxes:
                w.u8(int(ctx.permission_for(mbox.mbox_id)))
        return w.bytes()

    @classmethod
    def decode(cls, data: bytes) -> "SessionTopology":
        r = Reader(data)
        n_mboxes = r.u8()
        middleboxes = []
        for _ in range(n_mboxes):
            mbox_id = r.u8()
            name = r.string8()
            address = r.string8()
            middleboxes.append(MiddleboxInfo(mbox_id=mbox_id, name=name, address=address))
        n_contexts = r.u8()
        contexts = []
        for _ in range(n_contexts):
            ctx_id = r.u8()
            purpose = r.string8()
            permissions = {}
            for mbox in middleboxes:
                value = r.u8()
                try:
                    permission = Permission(value)
                except ValueError:
                    raise DecodeError(f"invalid permission value {value}") from None
                if permission is not Permission.NONE:
                    permissions[mbox.mbox_id] = permission
            contexts.append(
                ContextDefinition(
                    context_id=ctx_id, purpose=purpose, permissions=permissions
                )
            )
        r.expect_end()
        return cls(middleboxes=tuple(middleboxes), contexts=tuple(contexts))


@dataclass(frozen=True)
class FieldDef:
    """One named byte range of a record payload (a Madtls sub-context).

    ``start``/``end`` index the *payload* of every record in the parent
    context.  Ranges are clamped to the actual payload length so the
    field codec is total over variable-length records: a field entirely
    past the end covers zero bytes (its MAC still binds the absence).
    """

    name: str
    start: int
    end: int

    def __post_init__(self) -> None:
        if not 0 <= self.start <= self.end <= 0xFFFF:
            raise ValueError("field range must satisfy 0 <= start <= end <= 65535")
        if not self.name or len(self.name) > 255:
            raise ValueError("field name must be 1..255 bytes")

    def slice(self, payload):
        """The bytes of this field within ``payload`` (clamped)."""
        if self.start >= len(payload):
            return b""
        return payload[self.start : min(self.end, len(payload))]


@dataclass(frozen=True)
class FieldSchema:
    """Per-field sub-contexts for one encryption context (Madtls-style).

    Each field of the parent context's records gets its own MAC key,
    derived from the session's endpoint secret — so the handshake is
    unchanged — and its own set of per-middlebox *write grants*:
    ``write_grants[name]`` lists the middlebox ids allowed to modify
    that field.  Record-level write permission still gates whether a
    middlebox may rebuild the record at all; the field MACs then pin
    *which bytes* it legitimately changed.  Field read access is the
    parent context's read permission (fields share the context's
    encryption key); only write authority is refined per field.
    """

    context_id: int
    fields: Sequence[FieldDef] = ()
    write_grants: Dict[str, Sequence[int]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 1 <= self.context_id <= MAX_CONTEXTS:
            raise ValueError("context id must be in 1..255")
        names = [f.name for f in self.fields]
        if len(set(names)) != len(names):
            raise ValueError("duplicate field names")
        if len(self.fields) > 255:
            raise ValueError("at most 255 fields per context")
        unknown = set(self.write_grants) - set(names)
        if unknown:
            raise ValueError(f"write grants reference unknown fields {unknown}")

    def field_index(self, name: str) -> int:
        for i, f in enumerate(self.fields):
            if f.name == name:
                return i
        raise KeyError(f"unknown field {name!r}")

    def writers_of(self, name: str) -> Sequence[int]:
        return tuple(self.write_grants.get(name, ()))

    def writable_fields(self, mbox_id: int) -> List[int]:
        """Field indexes ``mbox_id`` may modify."""
        return [
            i
            for i, f in enumerate(self.fields)
            if mbox_id in self.write_grants.get(f.name, ())
        ]

    # -- wire format ---------------------------------------------------

    def encode(self) -> bytes:
        w = Writer()
        w.u8(self.context_id)
        w.u8(len(self.fields))
        for f in self.fields:
            w.string8(f.name)
            w.u16(f.start)
            w.u16(f.end)
            grants = tuple(self.write_grants.get(f.name, ()))
            w.u8(len(grants))
            for mbox_id in grants:
                w.u8(mbox_id)
        return w.bytes()

    @classmethod
    def decode_from(cls, r: Reader) -> "FieldSchema":
        context_id = r.u8()
        n_fields = r.u8()
        fields = []
        write_grants = {}
        for _ in range(n_fields):
            name = r.string8()
            start = r.u16()
            end = r.u16()
            try:
                fields.append(FieldDef(name=name, start=start, end=end))
            except ValueError as exc:
                raise DecodeError(str(exc)) from None
            n_grants = r.u8()
            grants = tuple(r.u8() for _ in range(n_grants))
            if grants:
                write_grants[name] = grants
        try:
            return cls(
                context_id=context_id,
                fields=tuple(fields),
                write_grants=write_grants,
            )
        except ValueError as exc:
            raise DecodeError(str(exc)) from None

    @classmethod
    def decode(cls, data: bytes) -> "FieldSchema":
        r = Reader(data)
        schema = cls.decode_from(r)
        r.expect_end()
        return schema


def restrict_topology(
    topology: SessionTopology, grants: Dict[int, Dict[int, Permission]]
) -> SessionTopology:
    """Apply a server-side policy: ``grants[mbox_id][ctx_id]`` caps the
    client-proposed permission (missing entries keep the proposal).

    Used by servers that want to say "no" (e.g. the online-banking use
    case, §4.2): the returned topology drives which half-keys the server
    distributes, so an un-granted permission never materialises even if the
    client granted its own half.
    """
    contexts = []
    for ctx in topology.contexts:
        permissions = {}
        for mbox_id, permission in ctx.permissions.items():
            cap = grants.get(mbox_id, {}).get(ctx.context_id, permission)
            effective = min(permission, cap)
            if effective is not Permission.NONE:
                permissions[mbox_id] = Permission(effective)
        contexts.append(
            ContextDefinition(
                context_id=ctx.context_id,
                purpose=ctx.purpose,
                permissions=permissions,
            )
        )
    return SessionTopology(middleboxes=topology.middleboxes, contexts=tuple(contexts))
