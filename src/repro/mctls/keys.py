"""The mcTLS key schedule (§3.3–§3.5, Figure 1).

Key material in an mcTLS session:

* ``K_endpoints`` — encryption + MAC keys per direction shared by the two
  endpoints only; protects context-0 (control) records and provides the
  endpoint MAC on every application record.
* per context ``c``:

  - ``K_readers[c]`` — encryption keys and reader-MAC keys per direction,
    held by endpoints, writers and readers of ``c``;
  - ``K_writers[c]`` — writer-MAC keys per direction, held by endpoints
    and writers of ``c``.

* ``K_C-Mi`` / ``K_S-Mi`` — pairwise encryption + MAC keys between each
  endpoint and each middlebox, derived from ephemeral DH, used to AuthEnc
  the ``MiddleboxKeyMaterial`` messages.

In the **default mode** each endpoint generates *partial* context keys
from a private secret and the final keys are
``PRF(K^C || K^S, label || rand_C || rand_S)`` — a middlebox needs both
halves, so access requires both endpoints' consent.  In **client key
distribution mode** (§3.6) context keys come straight from the endpoint
master secret and only the client distributes them.
"""

from __future__ import annotations

import hmac as _hmac
from dataclasses import dataclass

from repro.crypto.hmaccache import hmac_sha256
from repro.crypto.opcount import count_op
from repro.crypto.prf import p_sha256
from repro.tls.ciphersuites import CipherSuite, CipherError

MAC_KEY_LEN = 32
ENC_KEY_LEN = 16
PARTIAL_KEY_LEN = 32
SECRET_LEN = 48

LABEL_MASTER = b"ms"
LABEL_PAIRWISE = b"k"
LABEL_ENDPOINT_KEYS = b"endpoint keys"
LABEL_READER_PARTIAL = b"ck reader"
LABEL_WRITER_PARTIAL = b"ck writer"
LABEL_READER_KEYS = b"reader keys"
LABEL_WRITER_KEYS = b"writer keys"
LABEL_CKD_READER = b"ckd reader keys"
LABEL_CKD_WRITER = b"ckd writer keys"
LABEL_RES_READER = b"res reader keys"
LABEL_RES_WRITER = b"res writer keys"
LABEL_FIELD_MAC = b"field mac keys"

# Directions, named from the endpoints' perspective.
C2S = "c2s"
S2C = "s2c"


@dataclass(frozen=True)
class DirectionalKeys:
    """Encryption + MAC key for one direction."""

    enc: bytes
    mac: bytes


@dataclass(frozen=True)
class EndpointKeys:
    """K_endpoints: enc + MAC keys in both directions."""

    c2s: DirectionalKeys
    s2c: DirectionalKeys

    def for_direction(self, direction: str) -> DirectionalKeys:
        return self.c2s if direction == C2S else self.s2c


@dataclass(frozen=True)
class ReaderKeys:
    """K_readers for one context: enc + reader-MAC keys per direction."""

    c2s: DirectionalKeys
    s2c: DirectionalKeys

    def for_direction(self, direction: str) -> DirectionalKeys:
        return self.c2s if direction == C2S else self.s2c


@dataclass(frozen=True)
class WriterKeys:
    """K_writers for one context: writer-MAC key per direction."""

    mac_c2s: bytes
    mac_s2c: bytes

    def mac_for_direction(self, direction: str) -> bytes:
        return self.mac_c2s if direction == C2S else self.mac_s2c


@dataclass(frozen=True)
class ContextKeys:
    """All symmetric material for one context."""

    readers: ReaderKeys
    writers: WriterKeys


@dataclass(frozen=True)
class PairwiseKeys:
    """K_{E-M}: the endpoint↔middlebox key protecting key material."""

    secret: bytes
    enc: bytes
    mac: bytes


def derive_pairwise(premaster: bytes, rand_a: bytes, rand_b: bytes) -> PairwiseKeys:
    """PS → S → K for an endpoint-middlebox (or endpoint-endpoint) pair.

    Mirrors Figure 1: ``S = PRF_PS("ms" || rand_a || rand_b)`` then
    ``K = PRF_S("k" || rand_a || rand_b)``.
    """
    count_op("hash")
    secret = p_sha256(premaster, LABEL_MASTER + rand_a + rand_b, SECRET_LEN)
    count_op("key_gen")
    key_block = p_sha256(secret, LABEL_PAIRWISE + rand_a + rand_b, ENC_KEY_LEN + MAC_KEY_LEN)
    return PairwiseKeys(
        secret=secret,
        enc=key_block[:ENC_KEY_LEN],
        mac=key_block[ENC_KEY_LEN:],
    )


def derive_endpoint_keys(endpoint_secret: bytes, rand_c: bytes, rand_s: bytes) -> EndpointKeys:
    """K_endpoints from the endpoints' shared secret S_C-S."""
    count_op("key_gen")
    block = p_sha256(
        endpoint_secret,
        LABEL_ENDPOINT_KEYS + rand_c + rand_s,
        2 * (ENC_KEY_LEN + MAC_KEY_LEN),
    )
    return EndpointKeys(
        c2s=DirectionalKeys(enc=block[:16], mac=block[16:48]),
        s2c=DirectionalKeys(enc=block[48:64], mac=block[64:96]),
    )


def partial_reader_key(endpoint_secret: bytes, rand: bytes, context_id: int) -> bytes:
    """One endpoint's half of a context's reader key (K^E_readers)."""
    count_op("key_gen")
    return p_sha256(
        endpoint_secret, LABEL_READER_PARTIAL + rand + bytes([context_id]), PARTIAL_KEY_LEN
    )


def partial_writer_key(endpoint_secret: bytes, rand: bytes, context_id: int) -> bytes:
    """One endpoint's half of a context's writer key (K^E_writers)."""
    count_op("key_gen")
    return p_sha256(
        endpoint_secret, LABEL_WRITER_PARTIAL + rand + bytes([context_id]), PARTIAL_KEY_LEN
    )


def _carve_reader_block(block: bytes) -> ReaderKeys:
    return ReaderKeys(
        c2s=DirectionalKeys(enc=block[:16], mac=block[32:64]),
        s2c=DirectionalKeys(enc=block[16:32], mac=block[64:96]),
    )


def combine_context_keys(
    reader_half_c: bytes,
    reader_half_s: bytes,
    writer_half_c: bytes,
    writer_half_s: bytes,
    rand_c: bytes,
    rand_s: bytes,
) -> ContextKeys:
    """Final context keys from both endpoints' halves (default mode).

    ``K_readers = PRF_{K^C || K^S}("reader keys" || rand_C || rand_S)`` and
    likewise for writers — contributory: missing either half makes the
    result uncomputable.
    """
    count_op("key_gen", 2)
    reader_block = p_sha256(
        reader_half_c + reader_half_s, LABEL_READER_KEYS + rand_c + rand_s, 96
    )
    writer_block = p_sha256(
        writer_half_c + writer_half_s, LABEL_WRITER_KEYS + rand_c + rand_s, 64
    )
    return ContextKeys(
        readers=_carve_reader_block(reader_block),
        writers=WriterKeys(mac_c2s=writer_block[:32], mac_s2c=writer_block[32:]),
    )


def ckd_context_keys(
    endpoint_secret: bytes, rand_c: bytes, rand_s: bytes, context_id: int
) -> ContextKeys:
    """Full context keys straight from the endpoint master secret (client
    key distribution mode, §3.6).

    Both endpoints contributed randomness to ``endpoint_secret``, so the
    keys remain contributory in the entropy sense — but middlebox
    permission agreement is no longer enforced by construction.
    """
    count_op("key_gen", 2)
    seed = rand_c + rand_s + bytes([context_id])
    reader_block = p_sha256(endpoint_secret, LABEL_CKD_READER + seed, 96)
    writer_block = p_sha256(endpoint_secret, LABEL_CKD_WRITER + seed, 64)
    return ContextKeys(
        readers=_carve_reader_block(reader_block),
        writers=WriterKeys(mac_c2s=writer_block[:32], mac_s2c=writer_block[32:]),
    )


def resumption_context_keys(
    endpoint_secret: bytes, rand_c: bytes, rand_s: bytes, context_id: int
) -> ContextKeys:
    """Fresh context keys for an abbreviated (resumed) handshake.

    Both endpoints derive these independently from the cached endpoint
    secret and the *fresh* session randoms; the client then re-distributes
    them to the middleboxes (sealed to their certificate keys), exactly as
    in client-key-distribution mode.  The labels are distinct from the
    CKD labels so resumed keys can never collide with the original
    session's keys even under identical randoms.
    """
    count_op("key_gen", 2)
    seed = rand_c + rand_s + bytes([context_id])
    reader_block = p_sha256(endpoint_secret, LABEL_RES_READER + seed, 96)
    writer_block = p_sha256(endpoint_secret, LABEL_RES_WRITER + seed, 64)
    return ContextKeys(
        readers=_carve_reader_block(reader_block),
        writers=WriterKeys(mac_c2s=writer_block[:32], mac_s2c=writer_block[32:]),
    )


@dataclass(frozen=True)
class FieldKeys:
    """Per-direction MAC keys for one field sub-context (no encryption
    key: fields share the parent context's encryption; only write
    authority is refined per field)."""

    mac_c2s: bytes
    mac_s2c: bytes

    def mac_for_direction(self, direction: str) -> bytes:
        return self.mac_c2s if direction == C2S else self.mac_s2c


def derive_field_keys(
    endpoint_secret: bytes, rand_c: bytes, rand_s: bytes, schema
) -> tuple:
    """One :class:`FieldKeys` per field of ``schema``, in field order.

    Rooted in the *endpoint* secret — which only the two endpoints hold
    — rather than any context key: a middlebox with record-level write
    permission must not be able to forge the MAC of a field it was not
    granted, so field keys cannot be derivable from material every
    record writer already has.  The client distributes each field's key
    to exactly the middleboxes named in the schema's write grants.
    """
    out = []
    for index, field_def in enumerate(schema.fields):
        count_op("key_gen")
        seed = (
            rand_c
            + rand_s
            + bytes([schema.context_id, index])
            + field_def.name.encode("utf-8")
        )
        block = p_sha256(endpoint_secret, LABEL_FIELD_MAC + seed, 2 * MAC_KEY_LEN)
        out.append(FieldKeys(mac_c2s=block[:MAC_KEY_LEN], mac_s2c=block[MAC_KEY_LEN:]))
    return tuple(out)


# -- serialization of full key blocks (client key distribution mode) -----

READER_BLOCK_LEN = 96
WRITER_BLOCK_LEN = 64


def reader_block_bytes(keys: ReaderKeys) -> bytes:
    return keys.c2s.enc + keys.s2c.enc + keys.c2s.mac + keys.s2c.mac


def reader_keys_from_block(block: bytes) -> ReaderKeys:
    if len(block) != READER_BLOCK_LEN:
        raise ValueError("reader key block has wrong length")
    return _carve_reader_block(block)


def writer_block_bytes(keys: WriterKeys) -> bytes:
    return keys.mac_c2s + keys.mac_s2c


def writer_keys_from_block(block: bytes) -> WriterKeys:
    if len(block) != WRITER_BLOCK_LEN:
        raise ValueError("writer key block has wrong length")
    return WriterKeys(mac_c2s=block[:32], mac_s2c=block[32:])


# -- AuthEnc for MiddleboxKeyMaterial ------------------------------------


def authenc_seal(
    suite: CipherSuite, enc_key: bytes, mac_key: bytes, plaintext: bytes
) -> bytes:
    """Encrypt-then-MAC a key material payload (``AuthEnc_K(...)``)."""
    ciphertext = suite.new_cipher(enc_key).encrypt(plaintext)
    tag = hmac_sha256(mac_key, ciphertext)
    return ciphertext + tag


def authenc_open(
    suite: CipherSuite, enc_key: bytes, mac_key: bytes, sealed: bytes
) -> bytes:
    """Verify and decrypt an AuthEnc payload; raises
    :class:`~repro.tls.ciphersuites.CipherError` on tampering."""
    if len(sealed) < 32:
        raise CipherError("sealed key material too short")
    ciphertext, tag = sealed[:-32], sealed[-32:]
    expected = hmac_sha256(mac_key, ciphertext)
    if not _hmac.compare_digest(tag, expected):
        raise CipherError("key material authentication failed")
    return suite.new_cipher(enc_key).decrypt(ciphertext)


# -- RSA key transport (the paper's prototype shortcut, §5) ----------------
#
# "the MiddleboxKeyMaterial message should be encrypted using a key
# generated from the DHE key exchange between the endpoints and the
# middlebox, [but] we use RSA public key cryptography for simplicity in
# our implementation.  As a result, forward secrecy is not currently
# supported."  We implement both; RSA transport wraps a fresh symmetric
# key under the middlebox's certificate key (hybrid encryption) so any
# number of context shares fits.


def rsa_hybrid_seal(suite: CipherSuite, public_key, plaintext: bytes) -> bytes:
    """Seal key material to an RSA public key (hybrid: RSA-wrapped
    symmetric key + AuthEnc body)."""
    import os

    key_blob = os.urandom(ENC_KEY_LEN + MAC_KEY_LEN)
    wrapped = public_key.encrypt(key_blob)
    body = authenc_seal(suite, key_blob[:ENC_KEY_LEN], key_blob[ENC_KEY_LEN:], plaintext)
    return len(wrapped).to_bytes(2, "big") + wrapped + body


def rsa_hybrid_open(suite: CipherSuite, private_key, sealed: bytes) -> bytes:
    """Open RSA-hybrid-sealed key material with the middlebox's key."""
    from repro.crypto.rsa import RSAError

    if len(sealed) < 2:
        raise CipherError("sealed key material too short")
    wrapped_len = int.from_bytes(sealed[:2], "big")
    wrapped = sealed[2 : 2 + wrapped_len]
    body = sealed[2 + wrapped_len :]
    try:
        key_blob = private_key.decrypt(wrapped)
    except RSAError as exc:
        raise CipherError(f"RSA key unwrap failed: {exc}") from exc
    if len(key_blob) != ENC_KEY_LEN + MAC_KEY_LEN:
        raise CipherError("unwrapped key blob has wrong length")
    return authenc_open(suite, key_blob[:ENC_KEY_LEN], key_blob[ENC_KEY_LEN:], body)
