"""The mcTLS record protocol (§3.4).

An mcTLS record is a TLS record with a one-byte context ID in the header::

    type(1) || version(2) || context_id(1) || length(2) || fragment

Context 0 is the endpoint control context: after ChangeCipherSpec its
records (Finished, alerts) are protected with ``K_endpoints`` and a single
MAC, exactly like TLS.  Application contexts (1..255) use the
**endpoint-writer-reader** scheme: the fragment decrypts (under the
context's reader encryption key) to::

    payload || MAC_endpoints || MAC_writers || MAC_readers

Each MAC covers ``seq(8) || type(1) || version(2) || context_id(1) ||
payload_length(2) || payload`` under the corresponding key.  Sequence
numbers are global across contexts per direction, so record deletion by a
third party is detectable.

Verification rules (paper §3.4):

* an **endpoint** checks ``MAC_writers`` (raising on illegal
  modification) and compares ``MAC_endpoints`` to learn whether a *legal*
  modification occurred;
* a **writer** checks ``MAC_writers``;
* a **reader** checks ``MAC_readers`` (it cannot police other readers —
  the documented limitation; see :mod:`repro.mctls.strict_readers` for
  the paper's optional fixes).

Data-plane fast path
--------------------

Per (context, direction) the layer builds its protection state **once**
— one keyed cipher plus one precomputed HMAC context per MAC slot
(:class:`repro.crypto.hmaccache.CachedHmacSha256`) — instead of
re-keying per record; :func:`split_records` and the endpoint receive
path consume their buffers by cursor with a single batched reclamation,
and fragments yielded to middleboxes are ``memoryview``s over the
(immutable, safely retainable) ``raw`` record bytes.  Wire bytes are
pinned bit-for-bit by the golden-vector tests.
"""

from __future__ import annotations

import hmac as _hmac
from dataclasses import dataclass
from struct import Struct
from typing import Dict, Iterator, Optional, Tuple

from repro.crypto.hmaccache import CachedHmacSha256, hmac_sha256
from repro.mctls import keys as mk
from repro.mctls.contexts import ENDPOINT_CONTEXT_ID, Permission
from repro.recbuf import RecordBuffer
from repro.tls.ciphersuites import CipherError, CipherSuite
from repro.tls.record import (
    ALERT,
    APPLICATION_DATA,
    CHANGE_CIPHER_SPEC,
    CONTENT_TYPES,
    HANDSHAKE,
    MAX_PLAINTEXT,
    TLS_VERSION,
)

MCTLS_HEADER_LEN = 6
# mcTLS records carry their own version so cross-protocol confusion with
# plain TLS fails immediately instead of stalling on a misparsed length.
MCTLS_VERSION = 0xFC03
MAC_LEN = 32
MAX_FRAGMENT = MAX_PLAINTEXT + 2048

# type(1) || version(2) || context_id(1) || length(2)
_WIRE_HEADER = Struct(">BHBH")
# seq(8) || type(1) || version(2) || context_id(1) || payload_length(2)
_MAC_PREFIX = Struct(">QBHBH")

_compare_digest = _hmac.compare_digest


class McTLSRecordError(Exception):
    """Raised on malformed records or failed MAC verification.

    ``where`` reports which kind of party rejected the record
    (``"endpoint"`` / ``"middlebox"``) once known; framing errors raised
    by :func:`split_records` leave it ``None`` and the catching layer
    fills it in.  The fault-injection harness (:mod:`repro.faults`) uses
    this to attribute every detection to the right party.
    """

    where: Optional[str] = None
    mac: Optional[str] = None
    context_id: Optional[int] = None
    seq: Optional[int] = None


# The three MAC slots of the endpoint-writer-reader scheme (§3.4).
MAC_ENDPOINTS = "endpoints"
MAC_WRITERS = "writers"
MAC_READERS = "readers"


class MacVerificationError(McTLSRecordError):
    """A record MAC check failed — the §3.4 detection outcome.

    Carries *which* MAC caught the tampering (``MAC_ENDPOINTS`` /
    ``MAC_WRITERS`` / ``MAC_READERS``) and *where* (``"endpoint"`` or
    ``"middlebox"``), so tests can assert not just that tampering was
    detected but that the paper's Table 1 attributes the detection to the
    right key.
    """

    def __init__(
        self,
        message: str,
        *,
        mac: str,
        where: str,
        context_id: Optional[int] = None,
        seq: Optional[int] = None,
    ):
        super().__init__(message)
        self.mac = mac
        self.where = where
        self.context_id = context_id
        self.seq = seq


def mac_input(seq: int, content_type: int, context_id: int, payload: bytes) -> bytes:
    """The bytes every mcTLS record MAC covers."""
    return (
        _MAC_PREFIX.pack(seq, content_type, MCTLS_VERSION, context_id, len(payload))
        + payload
    )


def encode_header(content_type: int, context_id: int, fragment_len: int) -> bytes:
    return _WIRE_HEADER.pack(content_type, MCTLS_VERSION, context_id, fragment_len)


def split_records(buf: bytearray) -> Iterator[Tuple[int, int, bytes, bytes]]:
    """Consume complete records from ``buf``.

    Yields ``(content_type, context_id, fragment, raw_record_bytes)`` and
    deletes consumed bytes — used by middleboxes, which forward records
    they cannot (or need not) open verbatim.  ``raw`` is an immutable
    ``bytes`` copy (safe to retain or forward); ``fragment`` is a
    zero-copy ``memoryview`` into it.  Consumed bytes are reclaimed from
    ``buf`` in one batched deletion when iteration stops (exhaustion,
    ``break``, or an error on a later record).
    """
    pos = 0
    unpack_header = _WIRE_HEADER.unpack_from
    try:
        while True:
            if len(buf) - pos < MCTLS_HEADER_LEN:
                return
            content_type, version, context_id, length = unpack_header(buf, pos)
            if content_type not in CONTENT_TYPES:
                raise McTLSRecordError(f"invalid content type {content_type}")
            if version != MCTLS_VERSION:
                raise McTLSRecordError(f"unsupported record version 0x{version:04x}")
            if length > MAX_FRAGMENT:
                raise McTLSRecordError("record fragment too long")
            end = pos + MCTLS_HEADER_LEN + length
            if len(buf) < end:
                return
            raw = bytes(buf[pos:end])
            pos = end
            yield content_type, context_id, memoryview(raw)[MCTLS_HEADER_LEN:], raw
    finally:
        if pos:
            del buf[:pos]


@dataclass(slots=True)
class UnprotectedRecord:
    """A record opened by an endpoint record layer."""

    content_type: int
    context_id: int
    payload: bytes
    legally_modified: bool = False


def _hmac_sha256(key: bytes, data: bytes) -> bytes:
    # Kept as the module's (test- and fault-harness-visible) HMAC entry
    # point; the key schedule is cached per key in repro.crypto.hmaccache.
    return hmac_sha256(key, data)


class McTLSRecordLayer:
    """Record framing + protection for an mcTLS *endpoint*.

    Unprotected until :meth:`activate_write` / :meth:`activate_read` are
    called at the ChangeCipherSpec boundary.  The write direction for a
    client is ``c2s``; for a server ``s2c``.
    """

    def __init__(self, is_client: bool):
        self.is_client = is_client
        self.suite: Optional[CipherSuite] = None
        self.endpoint_keys: Optional[mk.EndpointKeys] = None
        self.context_keys: Dict[int, mk.ContextKeys] = {}
        self._write_protected = False
        self._read_protected = False
        self._write_seq = 0
        self._read_seq = 0
        self._inbuf = RecordBuffer()
        # Lazily-built per-direction protection state: context_id ->
        # (cipher, endpoint_mac_ctx, writer_mac_ctx, reader_mac_ctx) and
        # (cipher, mac_ctx) for the endpoint control context.  Built once
        # per key install, reused for every record.
        self._write_ctx_state: Dict[int, tuple] = {}
        self._read_ctx_state: Dict[int, tuple] = {}
        self._write_ep_state: Optional[tuple] = None
        self._read_ep_state: Optional[tuple] = None

    # -- direction helpers ----------------------------------------------

    @property
    def _write_dir(self) -> str:
        return mk.C2S if self.is_client else mk.S2C

    @property
    def _read_dir(self) -> str:
        return mk.S2C if self.is_client else mk.C2S

    # -- activation -------------------------------------------------------

    def set_suite(self, suite: CipherSuite) -> None:
        self.suite = suite
        self._drop_cached_state()

    def set_endpoint_keys(self, keys: mk.EndpointKeys) -> None:
        self.endpoint_keys = keys
        # The endpoint MAC key feeds the MAC_endpoints slot of *every*
        # context, so all cached state is stale, not just context 0.
        self._drop_cached_state()

    def install_context_keys(self, context_id: int, keys: mk.ContextKeys) -> None:
        self.context_keys[context_id] = keys
        self._write_ctx_state.pop(context_id, None)
        self._read_ctx_state.pop(context_id, None)

    def _drop_cached_state(self) -> None:
        self._write_ctx_state.clear()
        self._read_ctx_state.clear()
        self._write_ep_state = None
        self._read_ep_state = None

    def activate_write(self) -> None:
        if self.endpoint_keys is None or self.suite is None:
            raise McTLSRecordError("cannot activate protection before keys exist")
        self._write_protected = True
        self._write_seq = 0

    def activate_read(self) -> None:
        if self.endpoint_keys is None or self.suite is None:
            raise McTLSRecordError("cannot activate protection before keys exist")
        self._read_protected = True
        self._read_seq = 0

    # -- cached protection state ------------------------------------------

    def _endpoint_state(self, write: bool) -> tuple:
        state = self._write_ep_state if write else self._read_ep_state
        if state is None:
            direction = self._write_dir if write else self._read_dir
            keys = self.endpoint_keys.for_direction(direction)
            state = (self.suite.new_cipher(keys.enc), CachedHmacSha256(keys.mac))
            if write:
                self._write_ep_state = state
            else:
                self._read_ep_state = state
        return state

    def _context_state(self, context_id: int, write: bool) -> tuple:
        cache = self._write_ctx_state if write else self._read_ctx_state
        state = cache.get(context_id)
        if state is None:
            try:
                keys = self.context_keys[context_id]
            except KeyError:
                raise McTLSRecordError(f"no keys for context {context_id}") from None
            direction = self._write_dir if write else self._read_dir
            reader_keys = keys.readers.for_direction(direction)
            state = cache[context_id] = (
                self.suite.new_cipher(reader_keys.enc),
                CachedHmacSha256(self.endpoint_keys.for_direction(direction).mac),
                CachedHmacSha256(keys.writers.mac_for_direction(direction)),
                CachedHmacSha256(reader_keys.mac),
            )
        return state

    # -- encoding ---------------------------------------------------------

    def encode(self, content_type: int, payload: bytes, context_id: int = 0) -> bytes:
        """Frame (and fragment / protect) an outgoing payload."""
        if len(payload) <= MAX_PLAINTEXT:
            return self._encode_one(content_type, context_id, payload)
        view = memoryview(payload)
        out = bytearray()
        for offset in range(0, len(payload), MAX_PLAINTEXT):
            out += self._encode_one(
                content_type, context_id, view[offset : offset + MAX_PLAINTEXT]
            )
        return bytes(out)

    def _encode_one(self, content_type: int, context_id: int, payload) -> bytes:
        if content_type == CHANGE_CIPHER_SPEC or not self._write_protected:
            fragment = payload if type(payload) is bytes else bytes(payload)
        elif context_id == ENDPOINT_CONTEXT_ID:
            fragment = self._protect_endpoint(content_type, payload)
        else:
            fragment = self._protect_context(content_type, context_id, payload)
        return (
            _WIRE_HEADER.pack(content_type, MCTLS_VERSION, context_id, len(fragment))
            + fragment
        )

    def _protect_endpoint(self, content_type: int, payload) -> bytes:
        cipher, mac_ctx = self._endpoint_state(write=True)
        seq = self._write_seq
        self._write_seq = seq + 1
        prefix = _MAC_PREFIX.pack(
            seq, content_type, MCTLS_VERSION, ENDPOINT_CONTEXT_ID, len(payload)
        )
        mac = mac_ctx.digest(prefix, payload)
        return cipher.encrypt(b"".join((payload, mac)))

    def _protect_context(self, content_type: int, context_id: int, payload) -> bytes:
        cipher, ep_mac, wr_mac, rd_mac = self._context_state(context_id, write=True)
        seq = self._write_seq
        self._write_seq = seq + 1
        prefix = _MAC_PREFIX.pack(
            seq, content_type, MCTLS_VERSION, context_id, len(payload)
        )
        endpoint_mac = ep_mac.digest(prefix, payload)
        writer_mac = wr_mac.digest(prefix, payload)
        reader_mac = rd_mac.digest(prefix, payload)
        return cipher.encrypt(b"".join((payload, endpoint_mac, writer_mac, reader_mac)))

    def _next_write_seq(self) -> int:
        seq = self._write_seq
        self._write_seq += 1
        return seq

    # -- decoding ---------------------------------------------------------

    def feed(self, data: bytes) -> None:
        self._inbuf.append(data)

    def read_record(self) -> Optional[UnprotectedRecord]:
        buf = self._inbuf
        if len(buf) < MCTLS_HEADER_LEN:
            return None
        content_type, version, context_id, length = _WIRE_HEADER.unpack_from(
            buf.data, buf.pos
        )
        if content_type not in CONTENT_TYPES:
            raise McTLSRecordError(f"invalid content type {content_type}")
        if version != MCTLS_VERSION:
            raise McTLSRecordError(f"unsupported record version 0x{version:04x}")
        if length > MAX_FRAGMENT:
            raise McTLSRecordError("record fragment too long")
        if len(buf) < MCTLS_HEADER_LEN + length:
            return None
        buf.consume(MCTLS_HEADER_LEN)
        fragment = buf.take(length)
        return self._unprotect(content_type, context_id, fragment)

    def read_all(self) -> Iterator[UnprotectedRecord]:
        while True:
            record = self.read_record()
            if record is None:
                return
            yield record

    def _unprotect(
        self, content_type: int, context_id: int, fragment: bytes
    ) -> UnprotectedRecord:
        if content_type == CHANGE_CIPHER_SPEC or not self._read_protected:
            return UnprotectedRecord(content_type, context_id, fragment)
        if context_id == ENDPOINT_CONTEXT_ID:
            return self._unprotect_endpoint(content_type, fragment)
        return self._unprotect_context(content_type, context_id, fragment)

    def _unprotect_endpoint(self, content_type: int, fragment: bytes) -> UnprotectedRecord:
        cipher, mac_ctx = self._endpoint_state(write=False)
        try:
            plaintext = cipher.decrypt(fragment)
        except CipherError as exc:
            raise McTLSRecordError(f"decryption failed: {exc}") from exc
        if len(plaintext) < MAC_LEN:
            raise McTLSRecordError("record shorter than its MAC")
        payload, mac = plaintext[:-MAC_LEN], plaintext[-MAC_LEN:]
        seq = self._next_read_seq()
        prefix = _MAC_PREFIX.pack(
            seq, content_type, MCTLS_VERSION, ENDPOINT_CONTEXT_ID, len(payload)
        )
        if not _compare_digest(mac, mac_ctx.digest(prefix, payload)):
            raise MacVerificationError(
                "endpoint MAC verification failed",
                mac=MAC_ENDPOINTS,
                where="endpoint",
                context_id=ENDPOINT_CONTEXT_ID,
                seq=seq,
            )
        return UnprotectedRecord(content_type, ENDPOINT_CONTEXT_ID, payload)

    def _unprotect_context(
        self, content_type: int, context_id: int, fragment: bytes
    ) -> UnprotectedRecord:
        cipher, ep_mac, wr_mac, _rd_mac = self._context_state(context_id, write=False)
        try:
            plaintext = cipher.decrypt(fragment)
        except CipherError as exc:
            raise McTLSRecordError(f"decryption failed: {exc}") from exc
        if len(plaintext) < 3 * MAC_LEN:
            raise McTLSRecordError("record shorter than its three MACs")
        payload = plaintext[: -3 * MAC_LEN]
        endpoint_mac = plaintext[-3 * MAC_LEN : -2 * MAC_LEN]
        writer_mac = plaintext[-2 * MAC_LEN : -MAC_LEN]
        seq = self._next_read_seq()
        prefix = _MAC_PREFIX.pack(
            seq, content_type, MCTLS_VERSION, context_id, len(payload)
        )
        if not _compare_digest(writer_mac, wr_mac.digest(prefix, payload)):
            raise MacVerificationError(
                f"writer MAC verification failed on context {context_id} "
                "(illegal modification)",
                mac=MAC_WRITERS,
                where="endpoint",
                context_id=context_id,
                seq=seq,
            )
        legally_modified = not _compare_digest(
            endpoint_mac, ep_mac.digest(prefix, payload)
        )
        return UnprotectedRecord(
            content_type, context_id, payload, legally_modified=legally_modified
        )

    def _next_read_seq(self) -> int:
        seq = self._read_seq
        self._read_seq += 1
        return seq


# -- middlebox-side record processing --------------------------------------


@dataclass(slots=True)
class OpenedRecord:
    """A record opened (or passed through) by a middlebox."""

    content_type: int
    context_id: int
    payload: Optional[bytes]  # None when the middlebox cannot read it
    permission: Permission
    endpoint_mac: bytes = b""  # carried through writer rebuilds
    writer_mac: bytes = b""
    reader_mac: bytes = b""
    seq: int = 0


class MiddleboxRecordProcessor:
    """Per-context record access for a middlebox.

    The middlebox holds keys only for contexts it can read; for writable
    contexts it can rebuild records (recomputing writer+reader MACs and
    forwarding the original endpoint MAC, §3.4 "Generating MACs").

    One processor instance handles one *direction* of the session; the
    middlebox keeps two (client→server and server→client).
    """

    def __init__(self, suite: CipherSuite, direction: str):
        self.suite = suite
        self.direction = direction
        self.permissions: Dict[int, Permission] = {}
        self.context_keys: Dict[int, mk.ContextKeys] = {}
        self.seq = 0
        self.active = False
        # context_id -> (cipher, writer_mac_ctx, reader_mac_ctx,
        # can_write, permission), built lazily once per installed key set
        # and reused per record; None caches "cannot open" (no
        # permission / no keys / endpoint context) so the per-record cost
        # of a pass-through context is a single dict lookup.
        self._open_state: Dict[int, Optional[tuple]] = {}

    def install(self, context_id: int, permission: Permission, keys: Optional[mk.ContextKeys]) -> None:
        self.permissions[context_id] = permission
        if keys is not None:
            self.context_keys[context_id] = keys
        self._open_state.pop(context_id, None)

    def activate(self) -> None:
        """Start counting sequence numbers (at the CCS boundary)."""
        self.active = True
        self.seq = 0

    def _build_open_state(self, context_id: int) -> Optional[tuple]:
        permission = self.permissions.get(context_id, Permission.NONE)
        if (
            context_id == ENDPOINT_CONTEXT_ID
            or not permission.can_read
            or context_id not in self.context_keys
        ):
            state = None
        else:
            keys = self.context_keys[context_id]
            reader_keys = keys.readers.for_direction(self.direction)
            state = (
                self.suite.new_cipher(reader_keys.enc),
                CachedHmacSha256(keys.writers.mac_for_direction(self.direction)),
                CachedHmacSha256(reader_keys.mac),
                permission.can_write,
                permission,
            )
        self._open_state[context_id] = state
        return state

    def open_record(self, content_type: int, context_id: int, fragment: bytes) -> OpenedRecord:
        """Open (or account for) one protected record flowing through.

        Every record consumes a sequence number whether or not the
        middlebox can read it — sequence numbers are global.
        """
        if not self.active:
            raise McTLSRecordError("record processor not yet activated")
        seq = self.seq
        self.seq += 1
        try:
            state = self._open_state[context_id]
        except KeyError:
            state = self._build_open_state(context_id)
        if state is None:
            return OpenedRecord(content_type, context_id, None, Permission.NONE, seq=seq)

        cipher, wr_mac, rd_mac, can_write, permission = state
        try:
            plaintext = cipher.decrypt(fragment)
        except CipherError as exc:
            raise McTLSRecordError(f"middlebox decryption failed: {exc}") from exc
        if len(plaintext) < 3 * MAC_LEN:
            raise McTLSRecordError("record shorter than its three MACs")
        payload = plaintext[: -3 * MAC_LEN]
        endpoint_mac = plaintext[-3 * MAC_LEN : -2 * MAC_LEN]
        writer_mac = plaintext[-2 * MAC_LEN : -MAC_LEN]
        reader_mac = plaintext[-MAC_LEN:]
        prefix = _MAC_PREFIX.pack(
            seq, content_type, MCTLS_VERSION, context_id, len(payload)
        )

        if can_write:
            if not _compare_digest(writer_mac, wr_mac.digest(prefix, payload)):
                raise MacVerificationError(
                    "writer MAC verification failed at middlebox (illegal modification)",
                    mac=MAC_WRITERS,
                    where="middlebox",
                    context_id=context_id,
                    seq=seq,
                )
        else:
            if not _compare_digest(reader_mac, rd_mac.digest(prefix, payload)):
                raise MacVerificationError(
                    "reader MAC verification failed at middlebox "
                    "(third-party modification)",
                    mac=MAC_READERS,
                    where="middlebox",
                    context_id=context_id,
                    seq=seq,
                )
        return OpenedRecord(
            content_type,
            context_id,
            payload,
            permission,
            endpoint_mac,
            writer_mac,
            reader_mac,
            seq,
        )

    def rebuild_record(self, opened: OpenedRecord, new_payload: bytes) -> bytes:
        """Re-protect a (possibly modified) record for forwarding.

        Only legal for contexts this middlebox can write.  The original
        ``MAC_endpoints`` is forwarded untouched; writer and reader MACs
        are regenerated over the new payload.
        """
        context_id = opened.context_id
        try:
            state = self._open_state[context_id]
        except KeyError:
            state = self._build_open_state(context_id)
        if state is None or not state[3]:
            # Cold path: reproduce the pre-cache failure modes exactly.
            permission = self.permissions.get(context_id, Permission.NONE)
            if not permission.can_write:
                raise McTLSRecordError(
                    f"middlebox lacks write permission on context {context_id}"
                )
            # Write permission without cached state means the key lookup
            # must fail (or the context is one the cache refuses to open);
            # build directly from the key material as the old code did.
            keys = self.context_keys[context_id]
            reader_keys = keys.readers.for_direction(self.direction)
            state = (
                self.suite.new_cipher(reader_keys.enc),
                CachedHmacSha256(keys.writers.mac_for_direction(self.direction)),
                CachedHmacSha256(reader_keys.mac),
                True,
                permission,
            )
        cipher, wr_mac, rd_mac = state[0], state[1], state[2]
        prefix = _MAC_PREFIX.pack(
            opened.seq,
            opened.content_type,
            MCTLS_VERSION,
            opened.context_id,
            len(new_payload),
        )
        writer_mac = wr_mac.digest(prefix, new_payload)
        reader_mac = rd_mac.digest(prefix, new_payload)
        fragment = cipher.encrypt(
            b"".join((new_payload, opened.endpoint_mac, writer_mac, reader_mac))
        )
        return (
            _WIRE_HEADER.pack(
                opened.content_type, MCTLS_VERSION, opened.context_id, len(fragment)
            )
            + fragment
        )
