"""The mcTLS record protocol (§3.4).

An mcTLS record is a TLS record with a one-byte context ID in the header::

    type(1) || version(2) || context_id(1) || length(2) || fragment

Context 0 is the endpoint control context: after ChangeCipherSpec its
records (Finished, alerts) are protected with ``K_endpoints`` and a single
MAC, exactly like TLS.  Application contexts (1..255) use the
**endpoint-writer-reader** scheme: the fragment decrypts (under the
context's reader encryption key) to::

    payload || MAC_endpoints || MAC_writers || MAC_readers

Each MAC covers ``seq(8) || type(1) || version(2) || context_id(1) ||
payload_length(2) || payload`` under the corresponding key.  Sequence
numbers are global across contexts per direction, so record deletion by a
third party is detectable.

Verification rules (paper §3.4):

* an **endpoint** checks ``MAC_writers`` (raising on illegal
  modification) and compares ``MAC_endpoints`` to learn whether a *legal*
  modification occurred;
* a **writer** checks ``MAC_writers``;
* a **reader** checks ``MAC_readers`` (it cannot police other readers —
  the documented limitation; see :mod:`repro.mctls.strict_readers` for
  the paper's optional fixes).

Data-plane fast path
--------------------

Per (context, direction) the layer builds its protection state **once**
— one keyed cipher plus one precomputed HMAC context per MAC slot
(the suite provider's cached HMAC contexts) — instead of
re-keying per record; :func:`split_records` and the endpoint receive
path consume their buffers by cursor with a single batched reclamation,
and fragments yielded to middleboxes are ``memoryview``s over the
(immutable, safely retainable) ``raw`` record bytes.  Wire bytes are
pinned bit-for-bit by the golden-vector tests.
"""

from __future__ import annotations

import hmac as _hmac
from dataclasses import dataclass
from typing import Dict, Iterator, List, NamedTuple, Optional, Tuple

try:  # vectorized burst framing; scalar fallback below needs nothing
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the image
    _np = None

from repro import framing as frm
from repro.crypto.fastcipher import xor_bytes
from repro.crypto.hmaccache import hmac_sha256
from repro.crypto.opcount import current_counter
from repro.framing import MCTLS_COMPACT, MCTLS_DEFAULT, FramingError, RecordFraming
from repro.mctls import keys as mk
from repro.mctls.contexts import ENDPOINT_CONTEXT_ID, FieldSchema, Permission
from repro.recbuf import RecordBuffer
from repro.tls.ciphersuites import (
    CipherError,
    CipherSuite,
    stream_decrypt_batch,
    stream_encrypt_batch,
)
from repro.tls.record import (
    ALERT,
    APPLICATION_DATA,
    CHANGE_CIPHER_SPEC,
    CONTENT_TYPES,
    HANDSHAKE,
    MAX_PLAINTEXT,
    TLS_VERSION,
)

# The default mcTLS wire geometry lives in repro.framing; these module
# constants are aliases kept for the (large) existing import surface.
MCTLS_HEADER_LEN = MCTLS_DEFAULT.header_len
MCTLS_VERSION = frm.MCTLS_VERSION
MAC_LEN = MCTLS_DEFAULT.mac_len
MAX_FRAGMENT = frm.MAX_FRAGMENT

# type(1) || version(2) || context_id(1) || length(2)
_WIRE_HEADER = MCTLS_DEFAULT.header
# seq(8) || type(1) || version(2) || context_id(1) || payload_length(2)
_MAC_PREFIX = MCTLS_DEFAULT.mac_prefix_struct

_compare_digest = _hmac.compare_digest

# Sentinel distinguishing "state not built yet" from the cached None that
# means "this context can never be opened" in the per-record hot loop.
_MISSING_STATE = object()


class McTLSRecordError(Exception):
    """Raised on malformed records or failed MAC verification.

    ``where`` reports which kind of party rejected the record
    (``"endpoint"`` / ``"middlebox"``) once known; framing errors raised
    by :func:`split_records` leave it ``None`` and the catching layer
    fills it in.  The fault-injection harness (:mod:`repro.faults`) uses
    this to attribute every detection to the right party.
    """

    where: Optional[str] = None
    mac: Optional[str] = None
    context_id: Optional[int] = None
    seq: Optional[int] = None


# The three MAC slots of the endpoint-writer-reader scheme (§3.4).
MAC_ENDPOINTS = "endpoints"
MAC_WRITERS = "writers"
MAC_READERS = "readers"


class MacVerificationError(McTLSRecordError):
    """A record MAC check failed — the §3.4 detection outcome.

    Carries *which* MAC caught the tampering (``MAC_ENDPOINTS`` /
    ``MAC_WRITERS`` / ``MAC_READERS``) and *where* (``"endpoint"`` or
    ``"middlebox"``), so tests can assert not just that tampering was
    detected but that the paper's Table 1 attributes the detection to the
    right key.
    """

    def __init__(
        self,
        message: str,
        *,
        mac: str,
        where: str,
        context_id: Optional[int] = None,
        seq: Optional[int] = None,
    ):
        super().__init__(message)
        self.mac = mac
        self.where = where
        self.context_id = context_id
        self.seq = seq


def mac_input(seq: int, content_type: int, context_id: int, payload: bytes) -> bytes:
    """The bytes every mcTLS record MAC covers."""
    return (
        _MAC_PREFIX.pack(seq, content_type, MCTLS_VERSION, context_id, len(payload))
        + payload
    )


def encode_header(content_type: int, context_id: int, fragment_len: int) -> bytes:
    return _WIRE_HEADER.pack(content_type, MCTLS_VERSION, context_id, fragment_len)


def split_records(
    buf: bytearray, framing: Optional[RecordFraming] = None
) -> Iterator[Tuple[int, int, bytes, bytes]]:
    """Consume complete records from ``buf``.

    Yields ``(content_type, context_id, fragment, raw_record_bytes)`` and
    deletes consumed bytes — used by middleboxes, which forward records
    they cannot (or need not) open verbatim.  ``raw`` is an immutable
    ``bytes`` copy (safe to retain or forward); ``fragment`` is a
    zero-copy ``memoryview`` into it.  Consumed bytes are reclaimed from
    ``buf`` in one batched deletion when iteration stops (exhaustion,
    ``break``, or an error on a later record).  ``framing`` selects the
    wire geometry (default mcTLS framing when omitted).
    """
    fr = framing if framing is not None else MCTLS_DEFAULT
    header_len = fr.header_len
    parse_header = fr.parse_header
    pos = 0
    try:
        while True:
            if len(buf) - pos < header_len:
                return
            try:
                content_type, context_id, length = parse_header(buf, pos)
            except FramingError as exc:
                raise McTLSRecordError(str(exc)) from None
            if length > MAX_FRAGMENT:
                raise McTLSRecordError("record fragment too long")
            end = pos + header_len + length
            if len(buf) < end:
                return
            raw = bytes(buf[pos:end])
            pos = end
            yield content_type, context_id, memoryview(raw)[header_len:], raw
    finally:
        if pos:
            del buf[:pos]


def split_one(
    buf: bytearray, framing: Optional[RecordFraming] = None
) -> Optional[Tuple[int, int, bytes, bytes]]:
    """Parse and consume exactly one complete record from ``buf``.

    Returns ``(content_type, context_id, fragment, raw)`` like
    :func:`split_records`, or ``None`` when the buffer holds no complete
    record.  This is the stepwise drain middleboxes use on sessions
    whose negotiated framing differs from the default: the framing may
    change *between* records (at the ChangeCipherSpec boundary), so the
    caller must be able to re-select it per record.
    """
    fr = framing if framing is not None else MCTLS_DEFAULT
    if len(buf) < fr.header_len:
        return None
    try:
        content_type, context_id, length = fr.parse_header(buf, 0)
    except FramingError as exc:
        raise McTLSRecordError(str(exc)) from None
    if length > MAX_FRAGMENT:
        raise McTLSRecordError("record fragment too long")
    end = fr.header_len + length
    if len(buf) < end:
        return None
    raw = bytes(buf[:end])
    del buf[:end]
    return content_type, context_id, memoryview(raw)[fr.header_len :], raw


def _vector_scan(
    buf: bytearray,
    total: int,
    entries: List[Tuple[int, int, int, int]],
    fr: RecordFraming = MCTLS_DEFAULT,
) -> int:
    """Uniform-stride vectorized header scan for :func:`split_burst`.

    Bulk-transfer bursts are overwhelmingly runs of same-size records, so
    the first record's header predicts every later header's fixed bytes
    (type, version, length) at a constant stride.  One strided numpy
    comparison validates all of them at once; the first mismatching (or
    trailing partial) record hands control back to the scalar loop, which
    re-parses it from the returned position with full error handling.
    Appends accepted ``(content_type, context_id, start, end)`` entries
    and returns the resume position (0 when nothing was accepted).  The
    fixed-byte offsets/values come from the framing's ``scan_pattern``.
    """
    try:
        content_type, _, length = fr.parse_header(buf, 0)
    except FramingError:
        return 0
    if length > MAX_FRAGMENT:
        return 0
    stride = fr.header_len + length
    count = total // stride
    if count < 4:
        return 0
    arr = _np.frombuffer(memoryview(buf)[: count * stride], _np.uint8)
    offsets, values = fr.scan_pattern(content_type, length)
    ok = arr[offsets[0] :: stride] == values[0]
    for offset, value in zip(offsets[1:], values[1:]):
        ok = ok & (arr[offset::stride] == value)
    good = count if bool(ok.all()) else int(_np.argmin(ok))
    if not good:
        return 0
    context_ids = arr[fr.context_id_offset :: stride][:good].tolist()
    entries.extend(
        (content_type, cid, start, start + stride)
        for cid, start in zip(context_ids, range(0, good * stride, stride))
    )
    return good * stride


def split_burst(
    buf: bytearray, framing: Optional[RecordFraming] = None
) -> Tuple[bytes, List[Tuple[int, int, int, int]], Optional[McTLSRecordError]]:
    """Batched :func:`split_records`: parse every complete record at once.

    Returns ``(burst, entries, deferred_error)``:

    * ``burst`` — one immutable ``bytes`` snapshot of the parsed span
      (one copy for the whole burst instead of one per record);
    * ``entries`` — ``(content_type, context_id, start, end)`` *record*
      offsets into ``burst`` (the fragment starts ``framing.header_len``
      bytes after ``start``);
    * ``deferred_error`` — a framing error hit after the last good
      record, for the caller to raise once it has handled ``entries``
      (matching the order :func:`split_records` fails in).

    Parsed bytes are reclaimed from ``buf`` in a single deletion before
    returning, so the offsets can never alias bytes a later feed's
    reclamation would shift — the snapshot is self-contained.  Malformed
    bytes are left in ``buf`` exactly as :func:`split_records` leaves
    them.
    """
    fr = framing if framing is not None else MCTLS_DEFAULT
    header_len = fr.header_len
    parse_header = fr.parse_header
    pos = 0
    total = len(buf)
    entries: List[Tuple[int, int, int, int]] = []
    error: Optional[McTLSRecordError] = None
    if _np is not None and total >= 4 * header_len:
        pos = _vector_scan(buf, total, entries, fr)
    while total - pos >= header_len:
        try:
            content_type, context_id, length = parse_header(buf, pos)
        except FramingError as exc:
            error = McTLSRecordError(str(exc))
            break
        if length > MAX_FRAGMENT:
            error = McTLSRecordError("record fragment too long")
            break
        end = pos + header_len + length
        if end > total:
            break
        entries.append((content_type, context_id, pos, end))
        pos = end
    burst = bytes(memoryview(buf)[:pos])
    if pos:
        del buf[:pos]
    return burst, entries, error


@dataclass(slots=True)
class UnprotectedRecord:
    """A record opened by an endpoint record layer."""

    content_type: int
    context_id: int
    payload: bytes
    legally_modified: bool = False


def _hmac_sha256(key: bytes, data: bytes) -> bytes:
    # Kept as the module's (test- and fault-harness-visible) HMAC entry
    # point; the key schedule is cached per key in repro.crypto.hmaccache.
    return hmac_sha256(key, data)


class McTLSRecordLayer:
    """Record framing + protection for an mcTLS *endpoint*.

    Unprotected until :meth:`activate_write` / :meth:`activate_read` are
    called at the ChangeCipherSpec boundary.  The write direction for a
    client is ``c2s``; for a server ``s2c``.
    """

    def __init__(self, is_client: bool):
        self.is_client = is_client
        self.suite: Optional[CipherSuite] = None
        self.endpoint_keys: Optional[mk.EndpointKeys] = None
        self.context_keys: Dict[int, mk.ContextKeys] = {}
        self._write_protected = False
        self._read_protected = False
        self._write_seq = 0
        self._read_seq = 0
        self._inbuf = RecordBuffer()
        # Lazily-built per-direction protection state: context_id ->
        # (cipher, endpoint_mac_ctx, writer_mac_ctx, reader_mac_ctx) and
        # (cipher, mac_ctx) for the endpoint control context.  Built once
        # per key install, reused for every record.
        self._write_ctx_state: Dict[int, tuple] = {}
        self._read_ctx_state: Dict[int, tuple] = {}
        self._write_ep_state: Optional[tuple] = None
        self._read_ep_state: Optional[tuple] = None
        # Negotiated wire framing (applies to protected records only; the
        # handshake and ChangeCipherSpec always use the default framing)
        # plus per-context field schemas and field MAC keys/contexts.
        self._framing: RecordFraming = MCTLS_DEFAULT
        self._field_schemas: Dict[int, FieldSchema] = {}
        self._field_keys: Dict[int, tuple] = {}
        self._field_write_ctx: Dict[int, tuple] = {}
        self._field_read_ctx: Dict[int, tuple] = {}

    # -- direction helpers ----------------------------------------------

    @property
    def _write_dir(self) -> str:
        return mk.C2S if self.is_client else mk.S2C

    @property
    def _read_dir(self) -> str:
        return mk.S2C if self.is_client else mk.C2S

    # -- activation -------------------------------------------------------

    def set_suite(self, suite: CipherSuite) -> None:
        self.suite = suite
        self._drop_cached_state()

    def set_endpoint_keys(self, keys: mk.EndpointKeys) -> None:
        self.endpoint_keys = keys
        # The endpoint MAC key feeds the MAC_endpoints slot of *every*
        # context, so all cached state is stale, not just context 0.
        self._drop_cached_state()

    def install_context_keys(self, context_id: int, keys: mk.ContextKeys) -> None:
        self.context_keys[context_id] = keys
        self._write_ctx_state.pop(context_id, None)
        self._read_ctx_state.pop(context_id, None)

    def _drop_cached_state(self) -> None:
        self._write_ctx_state.clear()
        self._read_ctx_state.clear()
        self._write_ep_state = None
        self._read_ep_state = None
        self._field_write_ctx.clear()
        self._field_read_ctx.clear()

    # -- framing ----------------------------------------------------------

    @property
    def framing(self) -> RecordFraming:
        return self._framing

    def set_framing(
        self,
        framing: RecordFraming,
        schemas=(),
        field_keys: Optional[Dict[int, tuple]] = None,
    ) -> None:
        """Adopt a negotiated wire framing.

        Takes effect for protected records only: everything before the
        ChangeCipherSpec boundary — and the ChangeCipherSpec itself —
        stays default-framed, exactly like cipher activation.
        ``schemas`` are the session's :class:`FieldSchema` declarations;
        ``field_keys`` maps context id → tuple of
        :class:`~repro.mctls.keys.FieldKeys` in schema field order (an
        endpoint holds every field key).
        """
        self._framing = framing
        self._field_schemas = {s.context_id: s for s in schemas}
        self._field_keys = dict(field_keys or {})
        self._field_write_ctx.clear()
        self._field_read_ctx.clear()

    def activate_write(self) -> None:
        if self.endpoint_keys is None or self.suite is None:
            raise McTLSRecordError("cannot activate protection before keys exist")
        self._write_protected = True
        self._write_seq = 0

    def activate_read(self) -> None:
        if self.endpoint_keys is None or self.suite is None:
            raise McTLSRecordError("cannot activate protection before keys exist")
        self._read_protected = True
        self._read_seq = 0

    # -- cached protection state ------------------------------------------

    def _endpoint_state(self, write: bool) -> tuple:
        state = self._write_ep_state if write else self._read_ep_state
        if state is None:
            direction = self._write_dir if write else self._read_dir
            keys = self.endpoint_keys.for_direction(direction)
            state = (self.suite.new_cipher(keys.enc), self.suite.mac_context(keys.mac))
            if write:
                self._write_ep_state = state
            else:
                self._read_ep_state = state
        return state

    def _context_state(self, context_id: int, write: bool) -> tuple:
        cache = self._write_ctx_state if write else self._read_ctx_state
        state = cache.get(context_id)
        if state is None:
            try:
                keys = self.context_keys[context_id]
            except KeyError:
                raise McTLSRecordError(f"no keys for context {context_id}") from None
            direction = self._write_dir if write else self._read_dir
            reader_keys = keys.readers.for_direction(direction)
            state = cache[context_id] = (
                self.suite.new_cipher(reader_keys.enc),
                self.suite.mac_context(
                    self.endpoint_keys.for_direction(direction).mac
                ),
                self.suite.mac_context(keys.writers.mac_for_direction(direction)),
                self.suite.mac_context(reader_keys.mac),
            )
        return state

    # -- encoding ---------------------------------------------------------

    def encode(self, content_type: int, payload: bytes, context_id: int = 0) -> bytes:
        """Frame (and fragment / protect) an outgoing payload."""
        if len(payload) <= MAX_PLAINTEXT:
            return self._encode_one(content_type, context_id, payload)
        view = memoryview(payload)
        out = bytearray()
        for offset in range(0, len(payload), MAX_PLAINTEXT):
            out += self._encode_one(
                content_type, context_id, view[offset : offset + MAX_PLAINTEXT]
            )
        return bytes(out)

    def _encode_one(self, content_type: int, context_id: int, payload) -> bytes:
        if content_type == CHANGE_CIPHER_SPEC or not self._write_protected:
            fragment = payload if type(payload) is bytes else bytes(payload)
            fr = MCTLS_DEFAULT
        elif context_id == ENDPOINT_CONTEXT_ID:
            fr = self._framing
            fragment = self._protect_endpoint(fr, content_type, payload)
        else:
            fr = self._framing
            fragment = self._protect_context(fr, content_type, context_id, payload)
        return fr.pack_header(content_type, context_id, len(fragment)) + fragment

    def _protect_endpoint(self, fr: RecordFraming, content_type: int, payload) -> bytes:
        cipher, mac_ctx = self._endpoint_state(write=True)
        seq = self._write_seq
        self._write_seq = seq + 1
        prefix = fr.pack_mac_prefix(seq, content_type, ENDPOINT_CONTEXT_ID, len(payload))
        mac = mac_ctx.digest(prefix, payload)[: fr.mac_len]
        return cipher.encrypt(b"".join((payload, mac)))

    def _protect_context(
        self, fr: RecordFraming, content_type: int, context_id: int, payload
    ) -> bytes:
        cipher, _, _, _ = self._context_state(context_id, write=True)
        seq = self._write_seq
        self._write_seq = seq + 1
        return cipher.encrypt(
            self._context_plaintext(fr, seq, content_type, context_id, payload)
        )

    def _context_plaintext(
        self, fr: RecordFraming, seq: int, content_type: int, context_id: int, payload
    ) -> bytes:
        """``payload || MAC trailer`` for an application-context record
        (shared by the sequential and batched encode paths)."""
        _, ep_mac, wr_mac, rd_mac = self._context_state(context_id, write=True)
        prefix = fr.pack_mac_prefix(seq, content_type, context_id, len(payload))
        m = fr.mac_len
        parts = [
            payload,
            ep_mac.digest(prefix, payload)[:m],
            wr_mac.digest(prefix, payload)[:m],
            rd_mac.digest(prefix, payload)[:m],
        ]
        if fr.field_macs:
            schema = self._field_schemas.get(context_id)
            if schema is not None:
                ctxs = self._field_mac_contexts(context_id, write=True)
                parts.extend(
                    ctx.digest(prefix + bytes((index,)), field_def.slice(payload))[:m]
                    for index, (field_def, ctx) in enumerate(zip(schema.fields, ctxs))
                )
        return b"".join(parts)

    def _field_mac_contexts(self, context_id: int, write: bool) -> tuple:
        """Cached per-field MAC contexts for one direction of a context."""
        cache = self._field_write_ctx if write else self._field_read_ctx
        ctxs = cache.get(context_id)
        if ctxs is None:
            keys = self._field_keys.get(context_id)
            if not keys:
                raise McTLSRecordError(f"no field keys for context {context_id}")
            direction = self._write_dir if write else self._read_dir
            ctxs = cache[context_id] = tuple(
                self.suite.mac_context(fk.mac_for_direction(direction)) for fk in keys
            )
        return ctxs

    def _next_write_seq(self) -> int:
        seq = self._write_seq
        self._write_seq += 1
        return seq

    def _batchable(self) -> bool:
        """Whether the fused-XOR burst paths apply (SHA-CTR suite only).

        AES-CBC keeps the sequential per-record path so its padding /
        short-ciphertext failure ordering is preserved by construction.
        """
        suite = self.suite
        return suite is not None and suite.stream

    def encode_batch(self, items) -> bytes:
        """Frame a burst of ``(content_type, payload, context_id)`` triples.

        Byte-identical to ``b"".join(encode(ct, p, cid) for ...)``: the
        global write sequence and every MAC slot advance in record order,
        and per-record nonces are drawn in the same order the sequential
        path would (ChangeCipherSpec / unprotected records draw none, as
        before).  Adjacent records may belong to different contexts —
        nonce-order fidelity across their distinct ciphers is why the
        batch bottoms out in :func:`stream_encrypt_batch` rather than a
        per-cipher API.
        """
        if not (self._write_protected and self._batchable()):
            return b"".join(self.encode(ct, payload, cid) for ct, payload, cid in items)
        pending = []
        for content_type, payload, context_id in items:
            if len(payload) <= MAX_PLAINTEXT:
                pending.append((content_type, context_id, payload))
            else:
                view = memoryview(payload)
                for offset in range(0, len(payload), MAX_PLAINTEXT):
                    pending.append(
                        (content_type, context_id, view[offset : offset + MAX_PLAINTEXT])
                    )
        fr = self._framing
        protect_items = []  # (cipher, payload || MACs) in record order
        metas = []  # (framing, content_type, context_id, raw_fragment_or_None)
        for content_type, context_id, payload in pending:
            if content_type == CHANGE_CIPHER_SPEC:
                metas.append(
                    (
                        MCTLS_DEFAULT,
                        content_type,
                        context_id,
                        payload if type(payload) is bytes else bytes(payload),
                    )
                )
                continue
            if context_id == ENDPOINT_CONTEXT_ID:
                cipher, mac_ctx = self._endpoint_state(write=True)
                seq = self._next_write_seq()
                prefix = fr.pack_mac_prefix(
                    seq, content_type, ENDPOINT_CONTEXT_ID, len(payload)
                )
                plaintext = b"".join(
                    (payload, mac_ctx.digest(prefix, payload)[: fr.mac_len])
                )
            else:
                cipher = self._context_state(context_id, write=True)[0]
                seq = self._next_write_seq()
                plaintext = self._context_plaintext(
                    fr, seq, content_type, context_id, payload
                )
            metas.append((fr, content_type, context_id, None))
            protect_items.append((cipher, plaintext))
        fragments = iter(stream_encrypt_batch(protect_items))
        parts = []
        for meta_fr, content_type, context_id, raw in metas:
            fragment = raw if raw is not None else next(fragments)
            parts.append(meta_fr.pack_header(content_type, context_id, len(fragment)))
            parts.append(fragment)
        return b"".join(parts)

    # -- decoding ---------------------------------------------------------

    def feed(self, data: bytes) -> None:
        self._inbuf.append(data)

    def read_record(self) -> Optional[UnprotectedRecord]:
        buf = self._inbuf
        # Re-selected per record: a buffer can hold a (default-framed)
        # ChangeCipherSpec followed by records in the negotiated framing,
        # and the consumer activates read protection between the two.
        fr = self._framing if self._read_protected else MCTLS_DEFAULT
        header_len = fr.header_len
        if len(buf) < header_len:
            return None
        try:
            content_type, context_id, length = fr.parse_header(buf.data, buf.pos)
        except FramingError as exc:
            raise McTLSRecordError(str(exc)) from None
        if length > MAX_FRAGMENT:
            raise McTLSRecordError("record fragment too long")
        if len(buf) < header_len + length:
            return None
        buf.consume(header_len)
        fragment = buf.take(length)
        return self._unprotect(content_type, context_id, fragment)

    def read_all(self) -> Iterator[UnprotectedRecord]:
        while True:
            record = self.read_record()
            if record is None:
                return
            yield record

    def read_burst(self) -> Iterator[UnprotectedRecord]:
        """Yield every complete buffered record, batching decryption.

        Sequentially equivalent to :meth:`read_all`: records come out in
        order, and any failure raises at the same record position after
        the records before it were yielded.  Bursts are planned up to
        (never across) a ChangeCipherSpec record, because the consumer
        re-activates read protection — and resets the read sequence —
        between yields; the eligibility check re-runs each round so the
        records after the boundary batch under the new state.
        """
        while True:
            if self._read_protected and self._batchable():
                plan = self._plan_burst()
                if plan is not None:
                    yield from self._read_planned_burst(plan)
                    continue
            record = self.read_record()
            if record is None:
                return
            yield record

    def _plan_burst(self):
        """Parse all complete buffered records; consume them atomically.

        Returns ``(burst, entries, deferred_error)`` — one snapshot of
        the parsed span, ``(content_type, context_id, start, end)``
        fragment offsets into it, and a framing error to re-raise after
        the preceding records are yielded — or ``None`` when fewer than
        two records are buffered.  Snapshot-and-consume in one step means
        later :meth:`feed` calls can compact the receive buffer without
        invalidating the parsed offsets.
        """
        buf = self._inbuf
        # Burst planning only runs with read protection active, so the
        # negotiated framing applies for the whole plan.
        fr = self._framing
        header_len = fr.header_len
        data, start = buf.data, buf.pos
        total = len(data)
        pos = start
        entries = []
        error = None
        while total - pos >= header_len:
            try:
                content_type, context_id, length = fr.parse_header(data, pos)
            except FramingError as exc:
                error = McTLSRecordError(str(exc))
                break
            if length > MAX_FRAGMENT:
                error = McTLSRecordError("record fragment too long")
                break
            if content_type != APPLICATION_DATA:
                # Control records (handshake, alert, CCS) may change
                # session state when the consumer handles them between
                # yields — install context keys, re-key at a protection
                # boundary — so batching across one would decrypt later
                # records against pre-transition state.  They end the
                # plan and take the sequential path.
                break
            end = pos + header_len + length
            if end > total:
                break
            entries.append(
                (content_type, context_id, pos + header_len - start, end - start)
            )
            pos = end
        if len(entries) < 2:
            return None
        burst = buf.snapshot(pos - start)
        return burst, entries, error

    def _read_planned_burst(self, plan) -> Iterator[UnprotectedRecord]:
        burst, entries, error = plan
        view = memoryview(burst)
        # Pass A: look up per-record cipher state and batch-decrypt the
        # prefix that can decrypt.  Failures that the sequential path
        # would hit before decrypting (unknown context keys, fragment
        # shorter than a nonce) truncate the batch and re-raise at that
        # record's position in pass B.
        items = []
        deferred = None
        n = len(entries)
        for i, (content_type, context_id, frag_start, frag_end) in enumerate(entries):
            try:
                if context_id == ENDPOINT_CONTEXT_ID:
                    cipher = self._endpoint_state(write=False)[0]
                else:
                    cipher = self._context_state(context_id, write=False)[0]
            except McTLSRecordError as exc:
                deferred = exc
                n = i
                break
            if frag_end - frag_start < 16:
                exc = CipherError("ciphertext shorter than nonce")
                deferred = McTLSRecordError(f"decryption failed: {exc}")
                deferred.__cause__ = exc
                n = i
                break
            items.append((cipher, view[frag_start:frag_end]))
        plaintexts = stream_decrypt_batch(items)
        # Pass B: verify MACs and consume read sequence numbers strictly
        # in record order, through the same _finish_* helpers as the
        # sequential path.
        for (content_type, context_id, _, _), plaintext in zip(
            entries[:n], plaintexts
        ):
            if context_id == ENDPOINT_CONTEXT_ID:
                yield self._finish_endpoint(content_type, plaintext)
            else:
                yield self._finish_context(content_type, context_id, plaintext)
        if deferred is not None:
            raise deferred
        if error is not None:
            raise error

    def _unprotect(
        self, content_type: int, context_id: int, fragment: bytes
    ) -> UnprotectedRecord:
        if content_type == CHANGE_CIPHER_SPEC or not self._read_protected:
            return UnprotectedRecord(content_type, context_id, fragment)
        if context_id == ENDPOINT_CONTEXT_ID:
            return self._unprotect_endpoint(content_type, fragment)
        return self._unprotect_context(content_type, context_id, fragment)

    def _unprotect_endpoint(self, content_type: int, fragment: bytes) -> UnprotectedRecord:
        cipher, _ = self._endpoint_state(write=False)
        try:
            plaintext = cipher.decrypt(fragment)
        except CipherError as exc:
            raise McTLSRecordError(f"decryption failed: {exc}") from exc
        return self._finish_endpoint(content_type, plaintext)

    def _finish_endpoint(self, content_type: int, plaintext: bytes) -> UnprotectedRecord:
        """Verify a decrypted endpoint-context record (shared by both
        the sequential and batched read paths, so MAC coverage and error
        attribution can never drift between them)."""
        fr = self._framing
        m = fr.mac_len
        _, mac_ctx = self._endpoint_state(write=False)
        if len(plaintext) < m:
            raise McTLSRecordError("record shorter than its MAC")
        payload, mac = plaintext[:-m], plaintext[-m:]
        seq = self._next_read_seq()
        prefix = fr.pack_mac_prefix(
            seq, content_type, ENDPOINT_CONTEXT_ID, len(payload)
        )
        if not _compare_digest(mac, mac_ctx.digest(prefix, payload)[:m]):
            raise MacVerificationError(
                "endpoint MAC verification failed",
                mac=MAC_ENDPOINTS,
                where="endpoint",
                context_id=ENDPOINT_CONTEXT_ID,
                seq=seq,
            )
        return UnprotectedRecord(content_type, ENDPOINT_CONTEXT_ID, payload)

    def _unprotect_context(
        self, content_type: int, context_id: int, fragment: bytes
    ) -> UnprotectedRecord:
        cipher, _, _, _ = self._context_state(context_id, write=False)
        try:
            plaintext = cipher.decrypt(fragment)
        except CipherError as exc:
            raise McTLSRecordError(f"decryption failed: {exc}") from exc
        return self._finish_context(content_type, context_id, plaintext)

    def _finish_context(
        self, content_type: int, context_id: int, plaintext: bytes
    ) -> UnprotectedRecord:
        """Verify a decrypted application-context record (shared by both
        the sequential and batched read paths)."""
        fr = self._framing
        m = fr.mac_len
        _, ep_mac, wr_mac, _rd_mac = self._context_state(context_id, write=False)
        schema = self._field_schemas.get(context_id) if fr.field_macs else None
        n_fields = len(schema.fields) if schema is not None else 0
        trailer = (3 + n_fields) * m
        if len(plaintext) < trailer:
            raise McTLSRecordError("record shorter than its three MACs")
        base = len(plaintext) - trailer
        payload = plaintext[:base]
        endpoint_mac = plaintext[base : base + m]
        writer_mac = plaintext[base + m : base + 2 * m]
        seq = self._next_read_seq()
        prefix = fr.pack_mac_prefix(seq, content_type, context_id, len(payload))
        if not _compare_digest(writer_mac, wr_mac.digest(prefix, payload)[:m]):
            raise MacVerificationError(
                f"writer MAC verification failed on context {context_id} "
                "(illegal modification)",
                mac=MAC_WRITERS,
                where="endpoint",
                context_id=context_id,
                seq=seq,
            )
        if n_fields:
            # Per-field sub-contexts: each field MAC must verify under its
            # own key.  A record-level writer that modified a field it was
            # not granted passes the writer MAC (it holds K_writers) but
            # cannot refresh that field's MAC — detected and attributed
            # here, to the field.
            ctxs = self._field_mac_contexts(context_id, write=False)
            for index, (field_def, fctx) in enumerate(zip(schema.fields, ctxs)):
                offset = base + (3 + index) * m
                field_mac = plaintext[offset : offset + m]
                expected = fctx.digest(
                    prefix + bytes((index,)), field_def.slice(payload)
                )[:m]
                if not _compare_digest(field_mac, expected):
                    raise MacVerificationError(
                        f"field MAC verification failed on field "
                        f"{field_def.name!r} of context {context_id} "
                        "(unauthorized field modification)",
                        mac=f"field:{field_def.name}",
                        where="endpoint",
                        context_id=context_id,
                        seq=seq,
                    )
        legally_modified = not _compare_digest(
            endpoint_mac, ep_mac.digest(prefix, payload)[:m]
        )
        return UnprotectedRecord(
            content_type, context_id, payload, legally_modified=legally_modified
        )

    def _next_read_seq(self) -> int:
        seq = self._read_seq
        self._read_seq += 1
        return seq


# -- middlebox-side record processing --------------------------------------


class OpenedRecord(NamedTuple):
    """A record opened (or passed through) by a middlebox.

    A ``NamedTuple`` rather than a dataclass: one of these is built per
    record on the middlebox data plane, and the C-level tuple
    constructor keeps that allocation off the per-record floor.
    """

    content_type: int
    context_id: int
    payload: Optional[bytes]  # None when the middlebox cannot read it
    permission: Permission
    endpoint_mac: bytes = b""  # carried through writer rebuilds
    writer_mac: bytes = b""
    reader_mac: bytes = b""
    seq: int = 0
    field_macs: tuple = ()  # per-field MACs (compact framing), schema order


class MiddleboxRecordProcessor:
    """Per-context record access for a middlebox.

    The middlebox holds keys only for contexts it can read; for writable
    contexts it can rebuild records (recomputing writer+reader MACs and
    forwarding the original endpoint MAC, §3.4 "Generating MACs").

    One processor instance handles one *direction* of the session; the
    middlebox keeps two (client→server and server→client).
    """

    def __init__(self, suite: CipherSuite, direction: str):
        self.suite = suite
        self.direction = direction
        self.permissions: Dict[int, Permission] = {}
        self.context_keys: Dict[int, mk.ContextKeys] = {}
        self.seq = 0
        self.active = False
        # context_id -> (cipher, writer_mac_ctx, reader_mac_ctx,
        # can_write, permission), built lazily once per installed key set
        # and reused per record; None caches "cannot open" (no
        # permission / no keys / endpoint context) so the per-record cost
        # of a pass-through context is a single dict lookup.
        self._open_state: Dict[int, Optional[tuple]] = {}
        # Negotiated wire framing for this (always post-CCS) direction,
        # field schemas, and MAC contexts for the granted fields only.
        self.framing: RecordFraming = MCTLS_DEFAULT
        self._field_schemas: Dict[int, FieldSchema] = {}
        self._field_keys: Dict[int, Dict[int, mk.FieldKeys]] = {}
        self._field_ctx: Dict[int, Dict[int, object]] = {}

    def install(self, context_id: int, permission: Permission, keys: Optional[mk.ContextKeys]) -> None:
        self.permissions[context_id] = permission
        if keys is not None:
            self.context_keys[context_id] = keys
        self._open_state.pop(context_id, None)

    def set_framing(self, framing: RecordFraming, schemas=()) -> None:
        """Adopt the session's negotiated framing and field schemas."""
        self.framing = framing
        self._field_schemas = {s.context_id: s for s in schemas}
        self._field_ctx.clear()

    def install_field_keys(self, context_id: int, keys: Dict[int, mk.FieldKeys]) -> None:
        """Install MAC keys for the fields this middlebox was granted.

        ``keys`` maps field index → :class:`~repro.mctls.keys.FieldKeys`;
        a middlebox only ever receives keys for fields it may write, so
        holding a key *is* the write grant.
        """
        self._field_keys.setdefault(context_id, {}).update(keys)
        self._field_ctx.pop(context_id, None)

    def _field_mac_contexts(self, context_id: int) -> Dict[int, object]:
        ctxs = self._field_ctx.get(context_id)
        if ctxs is None:
            ctxs = self._field_ctx[context_id] = {
                index: self.suite.mac_context(fk.mac_for_direction(self.direction))
                for index, fk in self._field_keys.get(context_id, {}).items()
            }
        return ctxs

    def activate(self) -> None:
        """Start counting sequence numbers (at the CCS boundary)."""
        self.active = True
        self.seq = 0

    @property
    def opaque(self) -> bool:
        """True when this processor holds no context read keys at all.

        Every record then forwards verbatim — :meth:`open_burst` would
        yield ``None`` for each without touching a fragment — so callers
        may skip record extraction entirely and account for the burst
        with :meth:`skip_burst`.  Conservative: a processor with keys it
        is not permitted to use reports ``False`` and takes the general
        path.
        """
        return not self.context_keys

    def skip_burst(self, n: int) -> None:
        """Account for ``n`` records forwarded without opening.

        Equivalent to opening ``n`` pass-through records: sequence
        numbers are global per direction, so opaque records still
        consume them (deletion detection, §3.4).
        """
        if not self.active:
            raise McTLSRecordError("record processor not yet activated")
        self.seq += n

    def _build_open_state(self, context_id: int) -> Optional[tuple]:
        permission = self.permissions.get(context_id, Permission.NONE)
        if (
            context_id == ENDPOINT_CONTEXT_ID
            or not permission.can_read
            or context_id not in self.context_keys
        ):
            state = None
        else:
            keys = self.context_keys[context_id]
            reader_keys = keys.readers.for_direction(self.direction)
            state = (
                self.suite.new_cipher(reader_keys.enc),
                self.suite.mac_context(
                    keys.writers.mac_for_direction(self.direction)
                ),
                self.suite.mac_context(reader_keys.mac),
                permission.can_write,
                permission,
            )
        self._open_state[context_id] = state
        return state

    def open_record(self, content_type: int, context_id: int, fragment: bytes) -> OpenedRecord:
        """Open (or account for) one protected record flowing through.

        Every record consumes a sequence number whether or not the
        middlebox can read it — sequence numbers are global.
        """
        if not self.active:
            raise McTLSRecordError("record processor not yet activated")
        seq = self.seq
        self.seq += 1
        try:
            state = self._open_state[context_id]
        except KeyError:
            state = self._build_open_state(context_id)
        if state is None:
            return OpenedRecord(content_type, context_id, None, Permission.NONE, seq=seq)

        cipher = state[0]
        try:
            plaintext = cipher.decrypt(fragment)
        except CipherError as exc:
            raise McTLSRecordError(f"middlebox decryption failed: {exc}") from exc
        return self._finish_open(content_type, context_id, seq, state, plaintext)

    def open_burst(
        self, records
    ) -> Iterator[Optional[OpenedRecord]]:
        """Open a burst of protected records with one fused XOR pass.

        ``records`` is a sequence of ``(content_type, context_id,
        fragment)``.  Yields, in order, an :class:`OpenedRecord` per
        readable record and ``None`` per pass-through record (no
        allocation for contexts the middlebox cannot open — the caller
        already holds the raw bytes to forward).  MAC verification and
        any failure happen at yield time record by record, so a bad
        record raises only after the records before it were yielded and
        forwarded — the exact order a sequential ``open_record`` loop
        produces.  Non-SHA-CTR suites decrypt per record at yield time
        instead (same semantics, no fused XOR).
        """
        if not self.active:
            raise McTLSRecordError("record processor not yet activated")
        fast = self.suite.stream
        metas = []  # (content_type, context_id, seq, state, item_index)
        items = []  # (cipher, fragment) for the batched decrypt
        deferred = None
        open_state = self._open_state
        append_meta = metas.append
        append_item = items.append
        seq = self.seq
        for content_type, context_id, fragment in records:
            state = open_state.get(context_id, _MISSING_STATE)
            if state is _MISSING_STATE:
                state = self._build_open_state(context_id)
            if state is None:
                append_meta((content_type, context_id, seq, None, None))
                seq += 1
                continue
            if fast and len(fragment) < 16:
                # The sequential path fails this record inside decrypt;
                # fail at the same position, after the prefix is yielded.
                exc = CipherError("ciphertext shorter than nonce")
                deferred = McTLSRecordError(f"middlebox decryption failed: {exc}")
                deferred.__cause__ = exc
                seq += 1
                break
            append_meta((content_type, context_id, seq, state, len(items)))
            append_item((state[0], fragment))
            seq += 1
        self.seq = seq
        plaintexts = stream_decrypt_batch(items, views=True) if fast else None
        for content_type, context_id, seq, state, index in metas:
            if state is None:
                yield None
                continue
            if fast:
                plaintext = plaintexts[index]
            else:
                try:
                    plaintext = state[0].decrypt(items[index][1])
                except CipherError as exc:
                    raise McTLSRecordError(
                        f"middlebox decryption failed: {exc}"
                    ) from exc
            yield self._finish_open(content_type, context_id, seq, state, plaintext)
        if deferred is not None:
            raise deferred

    def open_wire_burst(
        self, burst: bytes, entries
    ) -> Iterator[Optional[OpenedRecord]]:
        """Open a framed burst straight from its wire buffer.

        ``entries`` are ``(content_type, context_id, start, end)``
        record offsets into ``burst`` from :func:`split_burst` —
        semantically identical to slicing out the fragments and calling
        :meth:`open_burst`.  A *uniform* burst (one record length, one
        content type, one context — the shape every bulk-transfer burst
        has) takes a grid path: nonces and bodies gather with two
        strided copies, the keystream generates in one packed call, and
        one XOR covers the whole burst, leaving per record only the MAC
        verification that defines the data-plane floor.  Yield order,
        MAC attribution, and failure position match :meth:`open_burst`
        exactly.
        """
        fr = self.framing
        hlen = fr.header_len
        m = fr.mac_len
        n = len(entries)
        if n == 0:
            return
        ct0, cid0, s0, e0 = entries[0]
        length = e0 - s0 - hlen
        if (
            _np is not None
            and n >= 4
            and length >= 16
            and entries[-1][3] - s0 == n * (e0 - s0)
            and self.active
            and self.suite.stream
        ):
            stride = e0 - s0
            arr = _np.frombuffer(
                burst, dtype=_np.uint8, count=n * stride, offset=s0
            ).reshape(n, stride)
            # One vectorized check proves the uniform grid really is the
            # framing: every grid-aligned header must repeat record 0's
            # type, context and length (version was already validated by
            # split_burst for each parsed record).
            offsets, expected = fr.grid_pattern(ct0, cid0, length)
            if bool((arr[:, list(offsets)] == expected).all()):
                state = self._open_state.get(cid0, _MISSING_STATE)
                if state is _MISSING_STATE:
                    state = self._build_open_state(cid0)
                seq = self.seq
                self.seq = seq + n
                if state is None:
                    for _ in range(n):
                        yield None
                    return
                counter = current_counter()
                if counter is not None:
                    counter.add("sym_decrypt", n)
                schema = self._field_schemas.get(cid0) if fr.field_macs else None
                n_fields = len(schema.fields) if schema is not None else 0
                trailer = (3 + n_fields) * m
                body_size = length - 16
                if body_size < trailer:
                    # Shorter than the MAC trailer: the generic loop
                    # raises per record with the exact sequential error.
                    finish = self._finish_open
                    for i in range(n):
                        yield finish(ct0, cid0, seq + i, state, b"")
                    return
                nonces = arr[:, hlen : hlen + 16].tobytes()
                cipher = state[0]
                ks_arr = cipher.stream_grid_arr(nonces, n, body_size)
                if ks_arr is not None:
                    # Fused decrypt: XOR the keystream view straight
                    # against the strided wire bodies — no packed bodies
                    # buffer, no keystream bytes, one plaintext alloc.
                    plain = (arr[:, hlen + 16 :] ^ ks_arr).tobytes()
                else:
                    bodies = arr[:, hlen + 16 :].tobytes()
                    ks = cipher.stream_grid(nonces, n, body_size)
                    plain = xor_bytes(bodies, ks, n * body_size)
                # Inlined uniform-burst twin of :meth:`_finish_open`:
                # same MAC inputs, same error attribution (the fault
                # matrix pins burst == sequential attribution cell by
                # cell), with the record fields sliced straight out of
                # the burst plaintext.
                _, wr_mac, rd_mac, can_write, permission = state
                digest = wr_mac.digest2 if can_write else rd_mac.digest2
                payload_len = body_size - trailer
                # All n MAC prefixes in one vectorized build: only the
                # 8-byte sequence number varies record to record.
                pre = _np.empty((n, 14), dtype=_np.uint8)
                pre[:, :8] = (
                    _np.arange(seq, seq + n, dtype=_np.uint64)
                    .astype(">u8")
                    .view(_np.uint8)
                    .reshape(n, 8)
                )
                pre[:, 8:] = _np.frombuffer(
                    fr.pack_mac_prefix(0, ct0, cid0, payload_len)[8:],
                    dtype=_np.uint8,
                )
                prefixes = pre.tobytes()
                off = 0
                poff = 0
                for i in range(n):
                    end = off + body_size
                    base = off + payload_len
                    payload = plain[off:base]
                    prefix = prefixes[poff : poff + 14]
                    poff += 14
                    endpoint_mac = plain[base : base + m]
                    writer_mac = plain[base + m : base + 2 * m]
                    reader_mac = plain[base + 2 * m : base + 3 * m]
                    if not _compare_digest(
                        writer_mac if can_write else reader_mac,
                        digest(prefix, payload)[:m],
                    ):
                        if can_write:
                            raise MacVerificationError(
                                "writer MAC verification failed at middlebox "
                                "(illegal modification)",
                                mac=MAC_WRITERS,
                                where="middlebox",
                                context_id=cid0,
                                seq=seq + i,
                            )
                        raise MacVerificationError(
                            "reader MAC verification failed at middlebox "
                            "(third-party modification)",
                            mac=MAC_READERS,
                            where="middlebox",
                            context_id=cid0,
                            seq=seq + i,
                        )
                    field_macs = (
                        tuple(
                            plain[base + (3 + j) * m : base + (4 + j) * m]
                            for j in range(n_fields)
                        )
                        if n_fields
                        else ()
                    )
                    yield OpenedRecord(
                        ct0,
                        cid0,
                        payload,
                        permission,
                        endpoint_mac,
                        writer_mac,
                        reader_mac,
                        seq + i,
                        field_macs,
                    )
                    off = end
                return
        view = memoryview(burst)
        yield from self.open_burst(
            (ct, cid, view[s + hlen : e]) for ct, cid, s, e in entries
        )

    def _finish_open(
        self,
        content_type: int,
        context_id: int,
        seq: int,
        state: tuple,
        plaintext: bytes,
    ) -> OpenedRecord:
        """Verify a decrypted record (shared by :meth:`open_record` and
        :meth:`open_burst`, so MAC attribution can never drift)."""
        fr = self.framing
        m = fr.mac_len
        _, wr_mac, rd_mac, can_write, permission = state
        schema = self._field_schemas.get(context_id) if fr.field_macs else None
        n_fields = len(schema.fields) if schema is not None else 0
        trailer = (3 + n_fields) * m
        if len(plaintext) < trailer:
            raise McTLSRecordError("record shorter than its three MACs")
        # bytes() wraps so both bytes and memoryview plaintexts (the
        # batched decrypt hands out views of one shared buffer) produce
        # self-contained, concatenation-safe fields.
        base = len(plaintext) - trailer
        payload = bytes(plaintext[:base])
        endpoint_mac = bytes(plaintext[base : base + m])
        writer_mac = bytes(plaintext[base + m : base + 2 * m])
        reader_mac = bytes(plaintext[base + 2 * m : base + 3 * m])
        field_macs = tuple(
            bytes(plaintext[base + (3 + j) * m : base + (4 + j) * m])
            for j in range(n_fields)
        )
        prefix = fr.pack_mac_prefix(seq, content_type, context_id, len(payload))

        if can_write:
            if not _compare_digest(writer_mac, wr_mac.digest(prefix, payload)[:m]):
                raise MacVerificationError(
                    "writer MAC verification failed at middlebox (illegal modification)",
                    mac=MAC_WRITERS,
                    where="middlebox",
                    context_id=context_id,
                    seq=seq,
                )
        else:
            if not _compare_digest(reader_mac, rd_mac.digest(prefix, payload)[:m]):
                raise MacVerificationError(
                    "reader MAC verification failed at middlebox "
                    "(third-party modification)",
                    mac=MAC_READERS,
                    where="middlebox",
                    context_id=context_id,
                    seq=seq,
                )
        return OpenedRecord(
            content_type,
            context_id,
            payload,
            permission,
            endpoint_mac,
            writer_mac,
            reader_mac,
            seq,
            field_macs,
        )

    def rebuild_record(self, opened: OpenedRecord, new_payload: bytes) -> bytes:
        """Re-protect a (possibly modified) record for forwarding.

        Only legal for contexts this middlebox can write.  The original
        ``MAC_endpoints`` is forwarded untouched; writer and reader MACs
        are regenerated over the new payload.  Under a field-MAC framing,
        only fields this middlebox holds keys for are re-MACed — the
        other field MACs are forwarded as received, so a write outside
        the granted fields leaves a stale MAC the endpoint detects.
        """
        fr = self.framing
        m = fr.mac_len
        cipher, wr_mac, rd_mac = self._rebuild_state(opened.context_id)
        prefix = fr.pack_mac_prefix(
            opened.seq, opened.content_type, opened.context_id, len(new_payload)
        )
        writer_mac = wr_mac.digest(prefix, new_payload)[:m]
        reader_mac = rd_mac.digest(prefix, new_payload)[:m]
        parts = [
            new_payload,
            opened.endpoint_mac[:m],
            writer_mac,
            reader_mac,
        ]
        parts.extend(
            self._field_trailer(fr, prefix, opened.context_id, new_payload, opened)
        )
        fragment = cipher.encrypt(b"".join(parts))
        return (
            fr.pack_header(opened.content_type, opened.context_id, len(fragment))
            + fragment
        )

    def _field_trailer(
        self,
        fr: RecordFraming,
        prefix: bytes,
        context_id: int,
        payload: bytes,
        opened: OpenedRecord,
    ) -> List[bytes]:
        """Field-MAC trailer slots for a rebuilt record.

        Fields this middlebox holds keys for are recomputed over the new
        payload; the rest forward ``opened.field_macs`` untouched — if the
        rewrite changed those bytes, the stale MAC is exactly the signal
        the receiving endpoint uses to detect the unauthorized field
        write.
        """
        schema = self._field_schemas.get(context_id) if fr.field_macs else None
        if schema is None:
            return []
        m = fr.mac_len
        ctxs = self._field_mac_contexts(context_id)
        parts = []
        for index, field_def in enumerate(schema.fields):
            ctx = ctxs.get(index)
            if ctx is not None:
                parts.append(
                    ctx.digest(prefix + bytes((index,)), field_def.slice(payload))[:m]
                )
            elif index < len(opened.field_macs):
                parts.append(opened.field_macs[index])
            else:
                parts.append(b"\x00" * m)
        return parts

    def _rebuild_state(self, context_id: int) -> tuple:
        """(cipher, writer_mac_ctx, reader_mac_ctx) for re-protecting."""
        try:
            state = self._open_state[context_id]
        except KeyError:
            state = self._build_open_state(context_id)
        if state is None or not state[3]:
            # Cold path: reproduce the pre-cache failure modes exactly.
            permission = self.permissions.get(context_id, Permission.NONE)
            if not permission.can_write:
                raise McTLSRecordError(
                    f"middlebox lacks write permission on context {context_id}"
                )
            # Write permission without cached state means the key lookup
            # must fail (or the context is one the cache refuses to open);
            # build directly from the key material as the old code did.
            keys = self.context_keys[context_id]
            reader_keys = keys.readers.for_direction(self.direction)
            state = (
                self.suite.new_cipher(reader_keys.enc),
                self.suite.mac_context(
                    keys.writers.mac_for_direction(self.direction)
                ),
                self.suite.mac_context(reader_keys.mac),
                True,
                permission,
            )
        return state[0], state[1], state[2]

    def rebuild_burst(self, pairs) -> List[bytes]:
        """Re-protect a burst of ``(opened, new_payload)`` pairs.

        Byte-identical to per-pair :meth:`rebuild_record` (nonces draw in
        pair order); the SHA-CTR suite fuses the burst's re-encryption
        into one XOR pass.  This is the write half of "re-MAC a whole
        burst per wakeup": writer and reader MACs are regenerated per
        record, endpoint MACs forwarded untouched.
        """
        if not self.suite.stream:
            return [self.rebuild_record(o, p) for o, p in pairs]
        fr = self.framing
        m = fr.mac_len
        protect_items = []
        headers = []
        pack = fr.pack_mac_prefix
        state_cid = -1
        cipher = wr_mac = rd_mac = None
        for opened, new_payload in pairs:
            if opened.context_id != state_cid:
                state_cid = opened.context_id
                cipher, wr_mac, rd_mac = self._rebuild_state(state_cid)
            prefix = pack(
                opened.seq, opened.content_type, opened.context_id, len(new_payload)
            )
            writer_mac = wr_mac.digest2(prefix, new_payload)[:m]
            reader_mac = rd_mac.digest2(prefix, new_payload)[:m]
            parts = [
                new_payload,
                opened.endpoint_mac[:m],
                writer_mac,
                reader_mac,
            ]
            parts.extend(
                self._field_trailer(fr, prefix, state_cid, new_payload, opened)
            )
            protect_items.append((cipher, b"".join(parts)))
            headers.append((opened.content_type, opened.context_id))
        fragments = stream_encrypt_batch(protect_items)
        return [
            fr.pack_header(content_type, context_id, len(fragment)) + fragment
            for (content_type, context_id), fragment in zip(headers, fragments)
        ]
