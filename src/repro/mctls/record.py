"""The mcTLS record protocol (§3.4).

An mcTLS record is a TLS record with a one-byte context ID in the header::

    type(1) || version(2) || context_id(1) || length(2) || fragment

Context 0 is the endpoint control context: after ChangeCipherSpec its
records (Finished, alerts) are protected with ``K_endpoints`` and a single
MAC, exactly like TLS.  Application contexts (1..255) use the
**endpoint-writer-reader** scheme: the fragment decrypts (under the
context's reader encryption key) to::

    payload || MAC_endpoints || MAC_writers || MAC_readers

Each MAC covers ``seq(8) || type(1) || version(2) || context_id(1) ||
payload_length(2) || payload`` under the corresponding key.  Sequence
numbers are global across contexts per direction, so record deletion by a
third party is detectable.

Verification rules (paper §3.4):

* an **endpoint** checks ``MAC_writers`` (raising on illegal
  modification) and compares ``MAC_endpoints`` to learn whether a *legal*
  modification occurred;
* a **writer** checks ``MAC_writers``;
* a **reader** checks ``MAC_readers`` (it cannot police other readers —
  the documented limitation; see :mod:`repro.mctls.strict_readers` for
  the paper's optional fixes).
"""

from __future__ import annotations

import hmac as _hmac
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple

from repro.mctls import keys as mk
from repro.mctls.contexts import ENDPOINT_CONTEXT_ID, Permission
from repro.tls.ciphersuites import CipherError, CipherSuite
from repro.tls.record import (
    ALERT,
    APPLICATION_DATA,
    CHANGE_CIPHER_SPEC,
    CONTENT_TYPES,
    HANDSHAKE,
    MAX_PLAINTEXT,
    TLS_VERSION,
)

MCTLS_HEADER_LEN = 6
# mcTLS records carry their own version so cross-protocol confusion with
# plain TLS fails immediately instead of stalling on a misparsed length.
MCTLS_VERSION = 0xFC03
MAC_LEN = 32
MAX_FRAGMENT = MAX_PLAINTEXT + 2048


class McTLSRecordError(Exception):
    """Raised on malformed records or failed MAC verification.

    ``where`` reports which kind of party rejected the record
    (``"endpoint"`` / ``"middlebox"``) once known; framing errors raised
    by :func:`split_records` leave it ``None`` and the catching layer
    fills it in.  The fault-injection harness (:mod:`repro.faults`) uses
    this to attribute every detection to the right party.
    """

    where: Optional[str] = None
    mac: Optional[str] = None
    context_id: Optional[int] = None
    seq: Optional[int] = None


# The three MAC slots of the endpoint-writer-reader scheme (§3.4).
MAC_ENDPOINTS = "endpoints"
MAC_WRITERS = "writers"
MAC_READERS = "readers"


class MacVerificationError(McTLSRecordError):
    """A record MAC check failed — the §3.4 detection outcome.

    Carries *which* MAC caught the tampering (``MAC_ENDPOINTS`` /
    ``MAC_WRITERS`` / ``MAC_READERS``) and *where* (``"endpoint"`` or
    ``"middlebox"``), so tests can assert not just that tampering was
    detected but that the paper's Table 1 attributes the detection to the
    right key.
    """

    def __init__(
        self,
        message: str,
        *,
        mac: str,
        where: str,
        context_id: Optional[int] = None,
        seq: Optional[int] = None,
    ):
        super().__init__(message)
        self.mac = mac
        self.where = where
        self.context_id = context_id
        self.seq = seq


def mac_input(seq: int, content_type: int, context_id: int, payload: bytes) -> bytes:
    """The bytes every mcTLS record MAC covers."""
    return (
        seq.to_bytes(8, "big")
        + bytes([content_type])
        + MCTLS_VERSION.to_bytes(2, "big")
        + bytes([context_id])
        + len(payload).to_bytes(2, "big")
        + payload
    )


def encode_header(content_type: int, context_id: int, fragment_len: int) -> bytes:
    return (
        bytes([content_type])
        + MCTLS_VERSION.to_bytes(2, "big")
        + bytes([context_id])
        + fragment_len.to_bytes(2, "big")
    )


def split_records(buf: bytearray) -> Iterator[Tuple[int, int, bytes, bytes]]:
    """Consume complete records from ``buf``.

    Yields ``(content_type, context_id, fragment, raw_record_bytes)`` and
    deletes consumed bytes — used by middleboxes, which forward records
    they cannot (or need not) open verbatim.
    """
    while True:
        if len(buf) < MCTLS_HEADER_LEN:
            return
        content_type = buf[0]
        version = int.from_bytes(buf[1:3], "big")
        context_id = buf[3]
        length = int.from_bytes(buf[4:6], "big")
        if content_type not in CONTENT_TYPES:
            raise McTLSRecordError(f"invalid content type {content_type}")
        if version != MCTLS_VERSION:
            raise McTLSRecordError(f"unsupported record version 0x{version:04x}")
        if length > MAX_FRAGMENT:
            raise McTLSRecordError("record fragment too long")
        if len(buf) < MCTLS_HEADER_LEN + length:
            return
        raw = bytes(buf[: MCTLS_HEADER_LEN + length])
        fragment = raw[MCTLS_HEADER_LEN:]
        del buf[: MCTLS_HEADER_LEN + length]
        yield content_type, context_id, fragment, raw


@dataclass
class UnprotectedRecord:
    """A record opened by an endpoint record layer."""

    content_type: int
    context_id: int
    payload: bytes
    legally_modified: bool = False


def _hmac_sha256(key: bytes, data: bytes) -> bytes:
    import hashlib

    return _hmac.new(key, data, hashlib.sha256).digest()


class McTLSRecordLayer:
    """Record framing + protection for an mcTLS *endpoint*.

    Unprotected until :meth:`activate_write` / :meth:`activate_read` are
    called at the ChangeCipherSpec boundary.  The write direction for a
    client is ``c2s``; for a server ``s2c``.
    """

    def __init__(self, is_client: bool):
        self.is_client = is_client
        self.suite: Optional[CipherSuite] = None
        self.endpoint_keys: Optional[mk.EndpointKeys] = None
        self.context_keys: Dict[int, mk.ContextKeys] = {}
        self._write_protected = False
        self._read_protected = False
        self._write_seq = 0
        self._read_seq = 0
        self._inbuf = bytearray()

    # -- direction helpers ----------------------------------------------

    @property
    def _write_dir(self) -> str:
        return mk.C2S if self.is_client else mk.S2C

    @property
    def _read_dir(self) -> str:
        return mk.S2C if self.is_client else mk.C2S

    # -- activation -------------------------------------------------------

    def set_suite(self, suite: CipherSuite) -> None:
        self.suite = suite

    def set_endpoint_keys(self, keys: mk.EndpointKeys) -> None:
        self.endpoint_keys = keys

    def install_context_keys(self, context_id: int, keys: mk.ContextKeys) -> None:
        self.context_keys[context_id] = keys

    def activate_write(self) -> None:
        if self.endpoint_keys is None or self.suite is None:
            raise McTLSRecordError("cannot activate protection before keys exist")
        self._write_protected = True
        self._write_seq = 0

    def activate_read(self) -> None:
        if self.endpoint_keys is None or self.suite is None:
            raise McTLSRecordError("cannot activate protection before keys exist")
        self._read_protected = True
        self._read_seq = 0

    # -- encoding ---------------------------------------------------------

    def encode(self, content_type: int, payload: bytes, context_id: int = 0) -> bytes:
        """Frame (and fragment / protect) an outgoing payload."""
        out = bytearray()
        offset = 0
        while True:
            chunk = payload[offset : offset + MAX_PLAINTEXT]
            out += self._encode_one(content_type, context_id, chunk)
            offset += MAX_PLAINTEXT
            if offset >= len(payload):
                break
        return bytes(out)

    def _encode_one(self, content_type: int, context_id: int, payload: bytes) -> bytes:
        if content_type == CHANGE_CIPHER_SPEC or not self._write_protected:
            fragment = payload
        elif context_id == ENDPOINT_CONTEXT_ID:
            fragment = self._protect_endpoint(content_type, payload)
        else:
            fragment = self._protect_context(content_type, context_id, payload)
        return encode_header(content_type, context_id, len(fragment)) + fragment

    def _protect_endpoint(self, content_type: int, payload: bytes) -> bytes:
        keys = self.endpoint_keys.for_direction(self._write_dir)
        seq = self._next_write_seq()
        mac = _hmac_sha256(
            keys.mac, mac_input(seq, content_type, ENDPOINT_CONTEXT_ID, payload)
        )
        return self.suite.new_cipher(keys.enc).encrypt(payload + mac)

    def _protect_context(self, content_type: int, context_id: int, payload: bytes) -> bytes:
        try:
            keys = self.context_keys[context_id]
        except KeyError:
            raise McTLSRecordError(f"no keys for context {context_id}") from None
        direction = self._write_dir
        seq = self._next_write_seq()
        covered = mac_input(seq, content_type, context_id, payload)
        endpoint_mac = _hmac_sha256(
            self.endpoint_keys.for_direction(direction).mac, covered
        )
        writer_mac = _hmac_sha256(keys.writers.mac_for_direction(direction), covered)
        reader_mac = _hmac_sha256(keys.readers.for_direction(direction).mac, covered)
        plaintext = payload + endpoint_mac + writer_mac + reader_mac
        return self.suite.new_cipher(keys.readers.for_direction(direction).enc).encrypt(
            plaintext
        )

    def _next_write_seq(self) -> int:
        seq = self._write_seq
        self._write_seq += 1
        return seq

    # -- decoding ---------------------------------------------------------

    def feed(self, data: bytes) -> None:
        self._inbuf += data

    def read_record(self) -> Optional[UnprotectedRecord]:
        for content_type, context_id, fragment, _raw in split_records(self._inbuf):
            return self._unprotect(content_type, context_id, fragment)
        return None

    def read_all(self) -> Iterator[UnprotectedRecord]:
        while True:
            record = self.read_record()
            if record is None:
                return
            yield record

    def _unprotect(
        self, content_type: int, context_id: int, fragment: bytes
    ) -> UnprotectedRecord:
        if content_type == CHANGE_CIPHER_SPEC or not self._read_protected:
            return UnprotectedRecord(content_type, context_id, fragment)
        if context_id == ENDPOINT_CONTEXT_ID:
            return self._unprotect_endpoint(content_type, fragment)
        return self._unprotect_context(content_type, context_id, fragment)

    def _unprotect_endpoint(self, content_type: int, fragment: bytes) -> UnprotectedRecord:
        keys = self.endpoint_keys.for_direction(self._read_dir)
        try:
            plaintext = self.suite.new_cipher(keys.enc).decrypt(fragment)
        except CipherError as exc:
            raise McTLSRecordError(f"decryption failed: {exc}") from exc
        if len(plaintext) < MAC_LEN:
            raise McTLSRecordError("record shorter than its MAC")
        payload, mac = plaintext[:-MAC_LEN], plaintext[-MAC_LEN:]
        seq = self._next_read_seq()
        expected = _hmac_sha256(
            keys.mac, mac_input(seq, content_type, ENDPOINT_CONTEXT_ID, payload)
        )
        if not _hmac.compare_digest(mac, expected):
            raise MacVerificationError(
                "endpoint MAC verification failed",
                mac=MAC_ENDPOINTS,
                where="endpoint",
                context_id=ENDPOINT_CONTEXT_ID,
                seq=seq,
            )
        return UnprotectedRecord(content_type, ENDPOINT_CONTEXT_ID, payload)

    def _unprotect_context(
        self, content_type: int, context_id: int, fragment: bytes
    ) -> UnprotectedRecord:
        try:
            keys = self.context_keys[context_id]
        except KeyError:
            raise McTLSRecordError(f"no keys for context {context_id}") from None
        direction = self._read_dir
        try:
            plaintext = self.suite.new_cipher(
                keys.readers.for_direction(direction).enc
            ).decrypt(fragment)
        except CipherError as exc:
            raise McTLSRecordError(f"decryption failed: {exc}") from exc
        if len(plaintext) < 3 * MAC_LEN:
            raise McTLSRecordError("record shorter than its three MACs")
        payload = plaintext[: -3 * MAC_LEN]
        endpoint_mac = plaintext[-3 * MAC_LEN : -2 * MAC_LEN]
        writer_mac = plaintext[-2 * MAC_LEN : -MAC_LEN]
        seq = self._next_read_seq()
        covered = mac_input(seq, content_type, context_id, payload)

        expected_writer = _hmac_sha256(
            keys.writers.mac_for_direction(direction), covered
        )
        if not _hmac.compare_digest(writer_mac, expected_writer):
            raise MacVerificationError(
                f"writer MAC verification failed on context {context_id} "
                "(illegal modification)",
                mac=MAC_WRITERS,
                where="endpoint",
                context_id=context_id,
                seq=seq,
            )
        expected_endpoint = _hmac_sha256(
            self.endpoint_keys.for_direction(direction).mac, covered
        )
        legally_modified = not _hmac.compare_digest(endpoint_mac, expected_endpoint)
        return UnprotectedRecord(
            content_type, context_id, payload, legally_modified=legally_modified
        )

    def _next_read_seq(self) -> int:
        seq = self._read_seq
        self._read_seq += 1
        return seq


# -- middlebox-side record processing --------------------------------------


@dataclass
class OpenedRecord:
    """A record opened (or passed through) by a middlebox."""

    content_type: int
    context_id: int
    payload: Optional[bytes]  # None when the middlebox cannot read it
    permission: Permission
    endpoint_mac: bytes = b""  # carried through writer rebuilds
    writer_mac: bytes = b""
    reader_mac: bytes = b""
    seq: int = 0


class MiddleboxRecordProcessor:
    """Per-context record access for a middlebox.

    The middlebox holds keys only for contexts it can read; for writable
    contexts it can rebuild records (recomputing writer+reader MACs and
    forwarding the original endpoint MAC, §3.4 "Generating MACs").

    One processor instance handles one *direction* of the session; the
    middlebox keeps two (client→server and server→client).
    """

    def __init__(self, suite: CipherSuite, direction: str):
        self.suite = suite
        self.direction = direction
        self.permissions: Dict[int, Permission] = {}
        self.context_keys: Dict[int, mk.ContextKeys] = {}
        self.seq = 0
        self.active = False

    def install(self, context_id: int, permission: Permission, keys: Optional[mk.ContextKeys]) -> None:
        self.permissions[context_id] = permission
        if keys is not None:
            self.context_keys[context_id] = keys

    def activate(self) -> None:
        """Start counting sequence numbers (at the CCS boundary)."""
        self.active = True
        self.seq = 0

    def open_record(self, content_type: int, context_id: int, fragment: bytes) -> OpenedRecord:
        """Open (or account for) one protected record flowing through.

        Every record consumes a sequence number whether or not the
        middlebox can read it — sequence numbers are global.
        """
        if not self.active:
            raise McTLSRecordError("record processor not yet activated")
        seq = self.seq
        self.seq += 1
        permission = self.permissions.get(context_id, Permission.NONE)
        if (
            context_id == ENDPOINT_CONTEXT_ID
            or not permission.can_read
            or context_id not in self.context_keys
        ):
            return OpenedRecord(
                content_type=content_type,
                context_id=context_id,
                payload=None,
                permission=Permission.NONE,
                seq=seq,
            )

        keys = self.context_keys[context_id]
        reader_keys = keys.readers.for_direction(self.direction)
        try:
            plaintext = self.suite.new_cipher(reader_keys.enc).decrypt(fragment)
        except CipherError as exc:
            raise McTLSRecordError(f"middlebox decryption failed: {exc}") from exc
        if len(plaintext) < 3 * MAC_LEN:
            raise McTLSRecordError("record shorter than its three MACs")
        payload = plaintext[: -3 * MAC_LEN]
        endpoint_mac = plaintext[-3 * MAC_LEN : -2 * MAC_LEN]
        writer_mac = plaintext[-2 * MAC_LEN : -MAC_LEN]
        reader_mac = plaintext[-MAC_LEN:]
        covered = mac_input(seq, content_type, context_id, payload)

        if permission.can_write:
            expected = _hmac_sha256(keys.writers.mac_for_direction(self.direction), covered)
            if not _hmac.compare_digest(writer_mac, expected):
                raise MacVerificationError(
                    "writer MAC verification failed at middlebox (illegal modification)",
                    mac=MAC_WRITERS,
                    where="middlebox",
                    context_id=context_id,
                    seq=seq,
                )
        else:
            expected = _hmac_sha256(reader_keys.mac, covered)
            if not _hmac.compare_digest(reader_mac, expected):
                raise MacVerificationError(
                    "reader MAC verification failed at middlebox "
                    "(third-party modification)",
                    mac=MAC_READERS,
                    where="middlebox",
                    context_id=context_id,
                    seq=seq,
                )
        return OpenedRecord(
            content_type=content_type,
            context_id=context_id,
            payload=payload,
            permission=permission,
            endpoint_mac=endpoint_mac,
            writer_mac=writer_mac,
            reader_mac=reader_mac,
            seq=seq,
        )

    def rebuild_record(self, opened: OpenedRecord, new_payload: bytes) -> bytes:
        """Re-protect a (possibly modified) record for forwarding.

        Only legal for contexts this middlebox can write.  The original
        ``MAC_endpoints`` is forwarded untouched; writer and reader MACs
        are regenerated over the new payload.
        """
        permission = self.permissions.get(opened.context_id, Permission.NONE)
        if not permission.can_write:
            raise McTLSRecordError(
                f"middlebox lacks write permission on context {opened.context_id}"
            )
        keys = self.context_keys[opened.context_id]
        covered = mac_input(opened.seq, opened.content_type, opened.context_id, new_payload)
        writer_mac = _hmac_sha256(keys.writers.mac_for_direction(self.direction), covered)
        reader_mac = _hmac_sha256(keys.readers.for_direction(self.direction).mac, covered)
        plaintext = new_payload + opened.endpoint_mac + writer_mac + reader_mac
        fragment = self.suite.new_cipher(
            keys.readers.for_direction(self.direction).enc
        ).encrypt(plaintext)
        return encode_header(opened.content_type, opened.context_id, len(fragment)) + fragment
