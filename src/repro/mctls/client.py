"""The mcTLS client state machine (§3.5, Figure 1).

The client drives the handshake: it declares the middlebox list and the
encryption contexts in its ClientHello, authenticates the server and every
middlebox, performs a Diffie-Hellman exchange with each of them using a
single ephemeral key pair, generates its half of every context key (or the
full keys in client-key-distribution mode) and distributes the material in
``MiddleboxKeyMaterial`` messages.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from enum import Enum, auto
from typing import Dict, List, Optional, Sequence

from repro import framing as frm
from repro.crypto.certs import Certificate, verify_chain
from repro.crypto.dh import DHGroup, DHKeyPair
from repro.mctls import keys as mk
from repro.mctls import messages as mm
from repro.mctls import session as ms
from repro.mctls.contexts import ENDPOINT_TARGET, SessionTopology
from repro.tls import keyschedule as ks
from repro.tls import messages as tls_msgs
from repro.tls.ciphersuites import CipherError
from repro.tls.connection import (
    ALERT_BAD_CERTIFICATE,
    ALERT_DECRYPT_ERROR,
    ALERT_UNEXPECTED_MESSAGE,
    TLSConfig,
    TLSError,
)
from repro.tls.sessioncache import ClientSessionStore, new_session_id
from repro.tls.tickets import ClientTicket


class _State(Enum):
    START = auto()
    WAIT_SERVER_HELLO = auto()
    WAIT_CERTIFICATE = auto()
    WAIT_SERVER_KEY_EXCHANGE = auto()
    WAIT_HELLO_DONE = auto()  # middlebox flights arrive here too
    WAIT_SERVER_FLIGHT = auto()  # server MKMs + CCS + Finished
    CONNECTED = auto()


@dataclass
class _MiddleboxState:
    """Everything the client learns about one middlebox."""

    mbox_id: int
    name: str
    random: Optional[bytes] = None
    chain: Sequence[Certificate] = ()
    ke_to_client: Optional[mm.MiddleboxKeyExchange] = None
    ke_to_server: Optional[mm.MiddleboxKeyExchange] = None
    pairwise: Optional[mk.PairwiseKeys] = None


class McTLSClient(ms.McTLSConnectionBase):
    """A sans-I/O mcTLS client.

    ``topology`` declares the middleboxes and contexts for this session;
    ``verify_middleboxes`` controls whether middlebox certificates are
    checked (the paper's R1 lets clients choose).
    """

    def __init__(
        self,
        config: TLSConfig,
        topology: SessionTopology,
        verify_middleboxes: bool = True,
        key_transport: ms.KeyTransport = None,
        session_store: Optional[ClientSessionStore] = None,
        ticket_store: Optional[ClientSessionStore] = None,
    ):
        super().__init__(config, is_client=True)
        self.topology = topology
        self.verify_middleboxes = verify_middleboxes
        self.key_transport = (
            key_transport if key_transport is not None else ms.KeyTransport.DHE
        )
        self.mode: ms.HandshakeMode = ms.HandshakeMode.DEFAULT
        self._session_store = session_store
        self._ticket_store = ticket_store
        self._offered_session: Optional[ms.McTLSSessionState] = None
        self._offered_ticket: Optional[ClientTicket] = None
        self._received_ticket: Optional[tls_msgs.NewSessionTicket] = None
        self._pending_session_id = b""
        self.resumed = False
        self._state = _State.START
        self._client_random = ms.make_random()
        self._client_secret = ms.make_secret()  # S_C
        self._server_random: Optional[bytes] = None
        self._server_dh_public: Optional[int] = None
        self._group: Optional[DHGroup] = None
        self._dh: Optional[DHKeyPair] = None
        self._endpoint_secret: Optional[bytes] = None  # S_C-S
        self._endpoint_keys: Optional[mk.EndpointKeys] = None
        self._mboxes: Dict[int, _MiddleboxState] = {
            m.mbox_id: _MiddleboxState(mbox_id=m.mbox_id, name=m.name)
            for m in topology.middleboxes
        }
        # Own partial keys per context (default mode).
        self._reader_halves: Dict[int, bytes] = {}
        self._writer_halves: Dict[int, bytes] = {}
        # Server halves, decrypted from the server's key material.
        self._server_reader_halves: Dict[int, bytes] = {}
        self._server_writer_halves: Dict[int, bytes] = {}
        # Record-framing negotiation: the offer goes in the ClientHello,
        # the server accepts by echoing it verbatim, and the negotiated
        # framing takes effect at the CCS boundary.  Default framing
        # needs no extension at all (bit-identical legacy handshakes).
        self._requested_framing = frm.framing_by_name(config.framing)
        self._field_schemas = tuple(config.field_schemas)
        self._framing_offer: Optional[bytes] = None
        self.negotiated_framing = frm.MCTLS_DEFAULT
        # context_id -> per-field-index FieldKeys (tuple, schema order).
        self._field_keys: Dict[int, tuple] = {}

    # -- driving ------------------------------------------------------------

    def start_handshake(self) -> None:
        if self._state is not _State.START:
            raise TLSError("handshake already started")
        session_id = self._resumable_session_id()
        extensions = [
            (tls_msgs.EXT_MIDDLEBOX_LIST, self.topology.encode()),
            (mm.EXT_MCTLS_KEY_TRANSPORT, bytes([int(self.key_transport)])),
        ]
        if self._requested_framing is not frm.MCTLS_DEFAULT:
            self._framing_offer = mm.encode_framing_offer(
                self._requested_framing.framing_id, self._field_schemas
            )
            extensions.append((mm.EXT_MCTLS_FRAMING, self._framing_offer))
        if self._ticket_store is not None:
            # Present even when empty: "I support tickets, issue me one".
            extensions.append(
                (
                    tls_msgs.EXT_SESSION_TICKET,
                    self._offered_ticket.ticket if self._offered_ticket else b"",
                )
            )
        hello = tls_msgs.ClientHello(
            random=self._client_random,
            session_id=session_id,
            cipher_suites=self.config.suite_ids(),
            extensions=extensions,
        )
        self._send_handshake(hello, tag=ms.TAG_CLIENT_HELLO)
        self._state = _State.WAIT_SERVER_HELLO

    def _session_store_key(self):
        # Namespaced so a store shared with a plain TLS client can never
        # hand us (or receive) the wrong protocol's session state.
        return ("mctls", self.config.server_name or "")

    def _resumable_session_id(self) -> bytes:
        """Offer a cached ticket or session, but only if this session's
        parameters still match it exactly — otherwise a full handshake is
        the only way to renegotiate topology, mode or transport.

        A ticket offer goes out with a fresh random session id (RFC 5077
        §3.4); the server echoes it on acceptance, which drives the same
        abbreviated flow the session-id path uses.
        """
        ticket = self._resumable_ticket()
        if ticket is not None:
            self._offered_ticket = ticket
            accept_id = new_session_id()
            self._offered_session = dataclasses.replace(
                ticket.state, session_id=accept_id
            )
            return accept_id
        if self._session_store is None:
            return b""
        cached = self._session_store.get(self._session_store_key())
        if not self._session_matches(cached):
            return b""
        self._offered_session = cached
        return cached.session_id

    def _session_matches(self, cached: object) -> bool:
        if not isinstance(cached, ms.McTLSSessionState):
            return False
        if cached.cipher_suite_id not in self.config.suite_ids():
            return False
        if cached.topology_bytes != self.topology.encode():
            return False
        if cached.key_transport != int(self.key_transport):
            return False
        return True

    def _resumable_ticket(self) -> Optional[ClientTicket]:
        if self._ticket_store is None:
            return None
        cached = self._ticket_store.get(self._session_store_key())
        if not isinstance(cached, ClientTicket):
            return None
        if not self._session_matches(cached.state):
            return None
        return cached

    # -- message handling -----------------------------------------------------

    def _handle_handshake_message(self, msg_type: int, body: bytes, raw: bytes) -> None:
        if msg_type == tls_msgs.SERVER_HELLO and self._state is _State.WAIT_SERVER_HELLO:
            self.transcript.add(ms.TAG_SERVER_HELLO, raw)
            self._on_server_hello(tls_msgs.ServerHello.decode(body))
        elif msg_type == tls_msgs.CERTIFICATE and self._state is _State.WAIT_CERTIFICATE:
            self.transcript.add(ms.TAG_SERVER_CERT, raw)
            self._on_server_certificate(tls_msgs.CertificateMessage.decode(body))
        elif (
            msg_type == tls_msgs.SERVER_KEY_EXCHANGE
            and self._state is _State.WAIT_SERVER_KEY_EXCHANGE
        ):
            self.transcript.add(ms.TAG_SERVER_KE, raw)
            self._on_server_key_exchange(tls_msgs.ServerKeyExchange.decode(body))
        elif msg_type == tls_msgs.MIDDLEBOX_HELLO and self._state is _State.WAIT_HELLO_DONE:
            hello = mm.MiddleboxHello.decode(body)
            self.transcript.add(ms.tag_mbox_hello(hello.mbox_id), raw)
            self._mbox(hello.mbox_id).random = hello.random
        elif (
            msg_type == tls_msgs.MIDDLEBOX_CERTIFICATE
            and self._state is _State.WAIT_HELLO_DONE
        ):
            cert_msg = mm.MiddleboxCertificateMessage.decode(body)
            self.transcript.add(ms.tag_mbox_cert(cert_msg.mbox_id), raw)
            self._on_middlebox_certificate(cert_msg)
        elif (
            msg_type == tls_msgs.MIDDLEBOX_KEY_EXCHANGE
            and self._state is _State.WAIT_HELLO_DONE
        ):
            if self.key_transport is ms.KeyTransport.RSA:
                raise TLSError("unexpected middlebox key exchange in RSA transport")
            ke = mm.MiddleboxKeyExchange.decode(body)
            self.transcript.add(ms.tag_mbox_ke(ke.mbox_id, ke.direction), raw)
            self._on_middlebox_key_exchange(ke)
        elif (
            msg_type == tls_msgs.SERVER_HELLO_DONE and self._state is _State.WAIT_HELLO_DONE
        ):
            tls_msgs.ServerHelloDone.decode(body)
            self.transcript.add(ms.TAG_SERVER_HELLO_DONE, raw)
            self._on_server_hello_done()
        elif (
            msg_type == tls_msgs.MIDDLEBOX_KEY_MATERIAL
            and self._state is _State.WAIT_SERVER_FLIGHT
        ):
            self._on_server_key_material(mm.MiddleboxKeyMaterial.decode(body), raw)
        elif (
            msg_type == tls_msgs.NEW_SESSION_TICKET
            and self._state is _State.WAIT_SERVER_FLIGHT
        ):
            # Deliberately NOT added to the transcript store: the server
            # sends it untagged too, so Finished hashes ignore it.
            self._received_ticket = tls_msgs.NewSessionTicket.decode(body)
        elif msg_type == tls_msgs.FINISHED and self._state is _State.WAIT_SERVER_FLIGHT:
            self._on_server_finished(tls_msgs.Finished.decode(body), raw)
        else:
            raise TLSError(
                f"unexpected handshake message {msg_type} in state {self._state.name}",
                ALERT_UNEXPECTED_MESSAGE,
            )

    def _mbox(self, mbox_id: int) -> _MiddleboxState:
        try:
            return self._mboxes[mbox_id]
        except KeyError:
            raise TLSError(f"message from undeclared middlebox {mbox_id}") from None

    # -- server flight 1 --------------------------------------------------------

    def _on_server_hello(self, hello: tls_msgs.ServerHello) -> None:
        suite = self.config.suite_for_id(hello.cipher_suite)
        if suite is None:
            raise TLSError("server selected a cipher suite we did not offer")
        self.negotiated_suite = suite
        self.records.set_suite(suite)
        self._server_random = hello.random
        mode_ext = hello.find_extension(mm.EXT_MCTLS_MODE)
        if mode_ext is None or len(mode_ext) != 1:
            raise TLSError("server did not negotiate an mcTLS mode")
        try:
            self.mode = ms.HandshakeMode(mode_ext[0])
        except ValueError:
            raise TLSError(f"unknown mcTLS mode {mode_ext[0]}") from None
        framing_ext = hello.find_extension(mm.EXT_MCTLS_FRAMING)
        if (
            self._offered_session is not None
            and hello.session_id == self._offered_session.session_id
        ):
            # Abbreviated handshakes never negotiate a framing: field
            # keys travel in the full handshake's key material flight,
            # which resumption skips, so the session falls back to the
            # default framing even if the offer went out.
            if framing_ext is not None:
                raise TLSError("server echoed a framing offer in a resumed handshake")
            self._begin_resumption(hello, suite)
            return
        if framing_ext is not None:
            if self._framing_offer is None or framing_ext != self._framing_offer:
                raise TLSError("server echoed a framing offer we did not make")
            self.negotiated_framing = self._requested_framing
        self._pending_session_id = hello.session_id
        self._state = _State.WAIT_CERTIFICATE

    def _begin_resumption(self, hello: tls_msgs.ServerHello, suite) -> None:
        """Server echoed our cached session id: abbreviated handshake."""
        cached = self._offered_session
        if hello.cipher_suite != cached.cipher_suite_id:
            raise TLSError("resumed session must keep its original cipher suite")
        if int(self.mode) != cached.mode:
            raise TLSError("resumed session must keep its original mcTLS mode")
        self.resumed = True
        self._endpoint_secret = cached.endpoint_secret
        self._endpoint_keys = mk.derive_endpoint_keys(
            self._endpoint_secret, self._client_random, self._server_random
        )
        self.records.set_endpoint_keys(self._endpoint_keys)
        # Fresh context keys from the cached secret + fresh randoms; the
        # server derives the same ones independently, and we re-distribute
        # them to the middleboxes after verifying the server's Finished.
        self._ckd_keys = {
            ctx_id: mk.resumption_context_keys(
                self._endpoint_secret,
                self._client_random,
                self._server_random,
                ctx_id,
            )
            for ctx_id in self.topology.context_ids
        }
        for ctx_id, keys in self._ckd_keys.items():
            self.records.install_context_keys(ctx_id, keys)
        # Server CCS + Finished arrive next.
        self._state = _State.WAIT_SERVER_FLIGHT

    def _on_server_certificate(self, message: tls_msgs.CertificateMessage) -> None:
        if not message.chain:
            raise TLSError("server sent an empty certificate chain", ALERT_BAD_CERTIFICATE)
        if self.config.verify_certificates:
            try:
                verify_chain(
                    message.chain,
                    self.config.trusted_roots,
                    expected_subject=self.config.server_name,
                )
            except Exception as exc:
                raise TLSError(
                    f"server certificate verification failed: {exc}",
                    ALERT_BAD_CERTIFICATE,
                ) from exc
        self.peer_certificate = message.chain[0]
        self._state = _State.WAIT_SERVER_KEY_EXCHANGE

    def _on_server_key_exchange(self, kx: tls_msgs.ServerKeyExchange) -> None:
        signed = self._client_random + self._server_random + kx.params_bytes()
        if self.config.verify_certificates:
            if not self.peer_certificate.public_key.verify(signed, kx.signature):
                raise TLSError("ServerKeyExchange signature invalid", ALERT_DECRYPT_ERROR)
        self._group = DHGroup(name="negotiated", p=kx.dh_p, g=kx.dh_g)
        self._server_dh_public = self._group.public_from_bytes(kx.dh_public)
        self._state = _State.WAIT_HELLO_DONE

    def _on_middlebox_certificate(self, message: mm.MiddleboxCertificateMessage) -> None:
        state = self._mbox(message.mbox_id)
        if not message.chain:
            raise TLSError("middlebox sent an empty certificate chain", ALERT_BAD_CERTIFICATE)
        if self.verify_middleboxes and self.config.verify_certificates:
            try:
                verify_chain(
                    message.chain,
                    self.config.trusted_roots,
                    expected_subject=state.name,
                )
            except Exception as exc:
                raise TLSError(
                    f"middlebox {state.name!r} certificate verification failed: {exc}",
                    ALERT_BAD_CERTIFICATE,
                ) from exc
        state.chain = message.chain

    def _on_middlebox_key_exchange(self, ke: mm.MiddleboxKeyExchange) -> None:
        state = self._mbox(ke.mbox_id)
        if state.random is None or not state.chain:
            raise TLSError("middlebox key exchange before its hello/certificate")
        if ke.direction == mm.TOWARD_CLIENT:
            endpoint_random = self._client_random
        else:
            endpoint_random = self._server_random
        if self.verify_middleboxes and self.config.verify_certificates:
            signed = ke.signed_bytes(state.random, endpoint_random)
            if not state.chain[0].public_key.verify(signed, ke.signature):
                raise TLSError(
                    f"middlebox {state.name!r} key exchange signature invalid",
                    ALERT_DECRYPT_ERROR,
                )
        if ke.direction == mm.TOWARD_CLIENT:
            state.ke_to_client = ke
        else:
            state.ke_to_server = ke

    # -- client flight ------------------------------------------------------------

    def _on_server_hello_done(self) -> None:
        self._check_middlebox_flights_complete()

        self._dh = self._group.generate_keypair()
        self._send_handshake(
            tls_msgs.ClientKeyExchange(dh_public=self._dh.public_bytes),
            tag=ms.TAG_CLIENT_KE,
        )

        # Endpoint shared secret and keys.
        premaster = self._dh.combine(self._server_dh_public)
        pairwise_es = mk.derive_pairwise(premaster, self._client_random, self._server_random)
        self._endpoint_secret = pairwise_es.secret
        self._endpoint_keys = mk.derive_endpoint_keys(
            self._endpoint_secret, self._client_random, self._server_random
        )
        self.records.set_endpoint_keys(self._endpoint_keys)
        self._setup_negotiated_framing()

        self._derive_middlebox_pairwise()

        self._generate_key_material()
        self._send_key_material()

        self._send_change_cipher_spec()
        self.records.activate_write()
        verify = ks.finished_verify_data(
            self._endpoint_secret,
            ks.LABEL_CLIENT_FINISHED,
            self.transcript.hash_over(self._order_t1()),
        )
        raw = self._send_handshake(tls_msgs.Finished(verify_data=verify))
        self.transcript.add(ms.TAG_CLIENT_FINISHED, raw)

        if self.mode is not ms.HandshakeMode.DEFAULT:
            self._install_ckd_context_keys()
        self._state = _State.WAIT_SERVER_FLIGHT

    def _setup_negotiated_framing(self) -> None:
        """Derive per-field MAC keys and arm the negotiated framing.

        Field keys are derived from the *endpoint* secret — only the two
        endpoints hold it, so a middlebox granted one field can never
        forge another field's MAC — and take effect (with the framing)
        at the CCS boundary, exactly like cipher activation.
        """
        if self.negotiated_framing is frm.MCTLS_DEFAULT:
            return
        if self.negotiated_framing.field_macs:
            for schema in self._field_schemas:
                self._field_keys[schema.context_id] = mk.derive_field_keys(
                    self._endpoint_secret,
                    self._client_random,
                    self._server_random,
                    schema,
                )
        self.records.set_framing(
            self.negotiated_framing, self._field_schemas, self._field_keys
        )

    def _field_keys_for_middlebox(
        self, mbox_id: int
    ) -> Dict[int, Dict[int, mk.FieldKeys]]:
        """Per-context field keys for exactly the fields granted to
        ``mbox_id`` — holding a field key *is* the write grant."""
        granted: Dict[int, Dict[int, mk.FieldKeys]] = {}
        for schema in self._field_schemas:
            keys = self._field_keys.get(schema.context_id)
            if keys is None:
                continue
            indexes = schema.writable_fields(mbox_id)
            if indexes:
                granted[schema.context_id] = {i: keys[i] for i in indexes}
        return granted

    def _derive_middlebox_pairwise(self) -> None:
        """Pairwise keys with each middlebox (single client DH key pair).

        RSA transport needs none: material is sealed to the middlebox's
        certificate key instead.  The delegation stack overrides this to
        a no-op — the client distributes no key material there.
        """
        if self.key_transport is ms.KeyTransport.DHE:
            for state in self._mboxes.values():
                peer_public = self._group.public_from_bytes(state.ke_to_client.dh_public)
                ps = self._dh.combine(peer_public)
                state.pairwise = mk.derive_pairwise(ps, self._client_random, state.random)

    # -- canonical transcript orders (delegation stack overrides) -----------

    def _order_t1(self) -> List[str]:
        return ms.canonical_order_t1(self.topology, self.mode, self.key_transport)

    def _order_t2(self) -> List[str]:
        return ms.canonical_order_t2(self.topology, self.mode, self.key_transport)

    def _resumed_order_server(self) -> List[str]:
        return ms.resumed_order_server_finished()

    def _resumed_order_client(self) -> List[str]:
        return ms.resumed_order_client_finished(self.topology)

    def _check_middlebox_flights_complete(self) -> None:
        for state in self._mboxes.values():
            if state.random is None or not state.chain:
                raise TLSError(f"incomplete handshake flight from middlebox {state.mbox_id}")
            if self.key_transport is ms.KeyTransport.RSA:
                continue  # no key exchanges in RSA transport
            if state.ke_to_client is None:
                raise TLSError(f"incomplete handshake flight from middlebox {state.mbox_id}")
            if self.mode is ms.HandshakeMode.DEFAULT and state.ke_to_server is None:
                raise TLSError(
                    f"middlebox {state.mbox_id} sent no server-directed key exchange"
                )

    def _generate_key_material(self) -> None:
        if self.mode is ms.HandshakeMode.DEFAULT:
            for ctx_id in self.topology.context_ids:
                self._reader_halves[ctx_id] = mk.partial_reader_key(
                    self._client_secret, self._client_random, ctx_id
                )
                self._writer_halves[ctx_id] = mk.partial_writer_key(
                    self._client_secret, self._client_random, ctx_id
                )
        else:
            # Full keys straight from the endpoint secret; nothing partial.
            self._ckd_keys = {
                ctx_id: mk.ckd_context_keys(
                    self._endpoint_secret,
                    self._client_random,
                    self._server_random,
                    ctx_id,
                )
                for ctx_id in self.topology.context_ids
            }

    def _shares_for_middlebox(self, mbox_id: int) -> List[mm.ContextKeyShare]:
        shares = []
        for ctx in self.topology.contexts:
            permission = ctx.permission_for(mbox_id)
            if not permission.can_read:
                continue
            if self.mode is ms.HandshakeMode.DEFAULT and not self.resumed:
                reader = self._reader_halves[ctx.context_id]
                writer = (
                    self._writer_halves[ctx.context_id] if permission.can_write else b""
                )
            else:
                # CKD mode and resumed sessions ship full key blocks.
                keys = self._ckd_keys[ctx.context_id]
                reader = mk.reader_block_bytes(keys.readers)
                writer = (
                    mk.writer_block_bytes(keys.writers) if permission.can_write else b""
                )
            shares.append(
                mm.ContextKeyShare(
                    context_id=ctx.context_id,
                    reader_material=reader,
                    writer_material=writer,
                )
            )
        return shares

    def _all_shares(self) -> List[mm.ContextKeyShare]:
        """Every context's material, for the opposite endpoint."""
        shares = []
        for ctx_id in self.topology.context_ids:
            if self.mode is ms.HandshakeMode.DEFAULT:
                reader = self._reader_halves[ctx_id]
                writer = self._writer_halves[ctx_id]
            else:
                keys = self._ckd_keys[ctx_id]
                reader = mk.reader_block_bytes(keys.readers)
                writer = mk.writer_block_bytes(keys.writers)
            shares.append(
                mm.ContextKeyShare(
                    context_id=ctx_id, reader_material=reader, writer_material=writer
                )
            )
        return shares

    def _send_key_material(self) -> None:
        suite = self.negotiated_suite
        for mbox in self.topology.middleboxes:
            state = self._mboxes[mbox.mbox_id]
            shares = mm.encode_key_shares(
                self._shares_for_middlebox(mbox.mbox_id),
                self._field_keys_for_middlebox(mbox.mbox_id),
            )
            if self.key_transport is ms.KeyTransport.RSA:
                sealed = mk.rsa_hybrid_seal(suite, state.chain[0].public_key, shares)
            else:
                sealed = mk.authenc_seal(
                    suite, state.pairwise.enc, state.pairwise.mac, shares
                )
            self._send_handshake(
                mm.MiddleboxKeyMaterial(
                    sender=mm.SENDER_CLIENT, target=mbox.mbox_id, sealed=sealed
                ),
                tag=ms.tag_client_mkm(mbox.mbox_id),
            )
        endpoint_dir = self._endpoint_keys.c2s
        sealed = mk.authenc_seal(
            suite,
            endpoint_dir.enc,
            endpoint_dir.mac,
            mm.encode_key_shares(self._all_shares()),
        )
        self._send_handshake(
            mm.MiddleboxKeyMaterial(
                sender=mm.SENDER_CLIENT, target=ENDPOINT_TARGET, sealed=sealed
            ),
            tag=ms.tag_client_mkm(ENDPOINT_TARGET),
        )

    # -- server flight 2 -------------------------------------------------------------

    def _on_server_key_material(self, mkm: mm.MiddleboxKeyMaterial, raw: bytes) -> None:
        if mkm.sender != mm.SENDER_SERVER:
            raise TLSError("client received its own key material back")
        if self.resumed:
            raise TLSError("server sent key material in a resumed handshake")
        if self.mode is not ms.HandshakeMode.DEFAULT:
            raise TLSError("server sent key material outside default mode")
        self.transcript.add(ms.tag_server_mkm(mkm.target), raw)
        if mkm.target != ENDPOINT_TARGET:
            return  # middlebox-addressed; transcript only
        endpoint_dir = self._endpoint_keys.s2c
        try:
            plaintext = mk.authenc_open(
                self.negotiated_suite, endpoint_dir.enc, endpoint_dir.mac, mkm.sealed
            )
        except CipherError as exc:
            raise TLSError(f"server key material failed to open: {exc}") from exc
        for share in mm.decode_key_shares(plaintext):
            self._server_reader_halves[share.context_id] = share.reader_material
            self._server_writer_halves[share.context_id] = share.writer_material

    def _handle_change_cipher_spec(self) -> None:
        if self._state is not _State.WAIT_SERVER_FLIGHT:
            raise TLSError("unexpected ChangeCipherSpec", ALERT_UNEXPECTED_MESSAGE)
        self.records.activate_read()

    def _on_server_finished(self, finished: tls_msgs.Finished, raw: bytes) -> None:
        if self.resumed:
            self._on_resumed_server_finished(finished, raw)
            return
        expected = ks.finished_verify_data(
            self._endpoint_secret,
            ks.LABEL_SERVER_FINISHED,
            self.transcript.hash_over(self._order_t2()),
        )
        if finished.verify_data != expected:
            raise TLSError("server Finished verification failed", ALERT_DECRYPT_ERROR)
        if self.mode is ms.HandshakeMode.DEFAULT:
            self._install_combined_context_keys()
        self._state = _State.CONNECTED
        self.handshake_complete = True
        self._store_session()
        self._store_ticket()
        self._emit(
            ms.McTLSHandshakeComplete(
                cipher_suite=self.negotiated_suite.name,
                mode=self.mode,
                topology=self.topology,
                peer_certificate=self.peer_certificate,
            )
        )

    def _on_resumed_server_finished(self, finished: tls_msgs.Finished, raw: bytes) -> None:
        """Verify the server's (first) Finished, then send our abbreviated
        flight: fresh middlebox key material + CCS + Finished."""
        expected = ks.finished_verify_data(
            self._endpoint_secret,
            ks.LABEL_SERVER_FINISHED,
            self.transcript.hash_over(self._resumed_order_server()),
        )
        if finished.verify_data != expected:
            raise TLSError("server Finished verification failed", ALERT_DECRYPT_ERROR)
        self.transcript.add(ms.TAG_SERVER_FINISHED, raw)

        self._redistribute_context_keys()

        self._send_change_cipher_spec()
        self.records.activate_write()
        verify = ks.finished_verify_data(
            self._endpoint_secret,
            ks.LABEL_CLIENT_FINISHED,
            self.transcript.hash_over(self._resumed_order_client()),
        )
        self._send_handshake(tls_msgs.Finished(verify_data=verify))
        self._state = _State.CONNECTED
        self.handshake_complete = True
        self._emit(
            ms.McTLSHandshakeComplete(
                cipher_suite=self.negotiated_suite.name,
                mode=self.mode,
                topology=self.topology,
                resumed=True,
            )
        )

    def _redistribute_context_keys(self) -> None:
        """Send each middlebox its fresh context keys for this session.

        There is no DH exchange (and hence no pairwise key) in the
        abbreviated flow, so the material is sealed to the middlebox's
        certificate key remembered from the original session — the same
        hybrid construction the RSA key transport uses.
        """
        suite = self.negotiated_suite
        for mbox in self.topology.middleboxes:
            cert = self._offered_session.middlebox_certs.get(mbox.mbox_id)
            if cert is None:
                raise TLSError(
                    f"no cached certificate for middlebox {mbox.mbox_id}; "
                    "cannot re-key a resumed session"
                )
            shares = mm.encode_key_shares(self._shares_for_middlebox(mbox.mbox_id))
            sealed = mk.rsa_hybrid_seal(suite, cert.public_key, shares)
            self._send_handshake(
                mm.MiddleboxKeyMaterial(
                    sender=mm.SENDER_CLIENT, target=mbox.mbox_id, sealed=sealed
                ),
                tag=ms.tag_client_mkm(mbox.mbox_id),
            )

    def _completed_session_state(self, session_id: bytes) -> ms.McTLSSessionState:
        return ms.McTLSSessionState(
            session_id=session_id,
            endpoint_secret=self._endpoint_secret,
            cipher_suite_id=self.negotiated_suite.suite_id,
            mode=int(self.mode),
            key_transport=int(self.key_transport),
            topology_bytes=self.topology.encode(),
            middlebox_certs={
                mbox_id: state.chain[0]
                for mbox_id, state in self._mboxes.items()
                if state.chain
            },
        )

    def _store_session(self) -> None:
        """Remember a completed full handshake for later resumption."""
        if self._session_store is None or not self._pending_session_id:
            return
        self._session_store.put(
            self._session_store_key(),
            self._completed_session_state(self._pending_session_id),
        )

    def _store_ticket(self) -> None:
        """Remember a freshly issued ticket alongside our own session
        state (the ticket is opaque; the middlebox certificates we need
        for re-keying on resumption come from *our* record, never the
        ticket)."""
        if self._ticket_store is None or self._received_ticket is None:
            return
        self._ticket_store.put(
            self._session_store_key(),
            ClientTicket(
                ticket=self._received_ticket.ticket,
                state=self._completed_session_state(b""),
            ),
        )

    # -- context key installation ------------------------------------------------------

    def _install_combined_context_keys(self) -> None:
        for ctx_id in self.topology.context_ids:
            if (
                ctx_id not in self._server_reader_halves
                or not self._server_reader_halves[ctx_id]
            ):
                raise TLSError(f"server sent no key material for context {ctx_id}")
            keys = mk.combine_context_keys(
                self._reader_halves[ctx_id],
                self._server_reader_halves[ctx_id],
                self._writer_halves[ctx_id],
                self._server_writer_halves[ctx_id],
                self._client_random,
                self._server_random,
            )
            self.records.install_context_keys(ctx_id, keys)

    def _install_ckd_context_keys(self) -> None:
        for ctx_id, keys in self._ckd_keys.items():
            self.records.install_context_keys(ctx_id, keys)
