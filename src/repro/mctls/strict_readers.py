"""Optional fixes for the reader-policing gap (§3.4).

With the standard endpoint-writer-reader MAC scheme, readers cannot
detect *illegal modifications made by other readers* (everyone holding
``K_readers`` can forge a readers MAC).  The paper sketches two optional
remedies and judges their overhead not generally worthwhile, suggesting
they "could be implemented as optional modes negotiated during the
handshake":

(a) **pairwise MACs** — writers/endpoints share a pairwise key with each
    reader and append one extra MAC per reader;
(b) **signatures** — endpoints/writers append a digital signature
    instead of the writers MAC, which readers can verify but not forge.

This module implements both as record-level codecs so their security and
overhead can be tested and benchmarked (the ablation bench quantifies
exactly the cost the paper declined to pay by default).
"""

from __future__ import annotations

import hashlib
import hmac as _hmac
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.crypto.rsa import RSAPrivateKey, RSAPublicKey
from repro.mctls.record import MAC_LEN, McTLSRecordError, mac_input


def _mac(key: bytes, data: bytes) -> bytes:
    return _hmac.new(key, data, hashlib.sha256).digest()


# -- option (a): pairwise reader MACs ---------------------------------------


@dataclass
class PairwiseReaderMACs:
    """Writers/endpoints append one MAC per reader under a pairwise key.

    ``reader_keys`` maps reader id → pairwise key (each shared between
    that reader and every writer/endpoint).  A reader verifies *its own*
    MAC, which no other reader can forge.
    """

    reader_keys: Dict[int, bytes]

    def protect(
        self, seq: int, content_type: int, context_id: int, payload: bytes
    ) -> bytes:
        """Append the per-reader MAC trailer (reader-id order)."""
        trailer = b"".join(
            _mac(key, mac_input(seq, content_type, context_id, payload))
            for _, key in sorted(self.reader_keys.items())
        )
        return payload + trailer

    def verify(
        self,
        reader_id: int,
        seq: int,
        content_type: int,
        context_id: int,
        protected: bytes,
    ) -> bytes:
        """Verify reader ``reader_id``'s MAC; returns the payload."""
        n = len(self.reader_keys)
        if len(protected) < n * MAC_LEN:
            raise McTLSRecordError("record shorter than its pairwise MAC trailer")
        payload = protected[: -n * MAC_LEN]
        trailer = protected[-n * MAC_LEN :]
        ordered_ids = sorted(self.reader_keys)
        index = ordered_ids.index(reader_id)
        mac = trailer[index * MAC_LEN : (index + 1) * MAC_LEN]
        expected = _mac(
            self.reader_keys[reader_id],
            mac_input(seq, content_type, context_id, payload),
        )
        if not _hmac.compare_digest(mac, expected):
            raise McTLSRecordError(
                "pairwise reader MAC verification failed (reader-level tampering)"
            )
        return payload

    def overhead_bytes(self) -> int:
        return len(self.reader_keys) * MAC_LEN


# -- option (b): writer signatures ------------------------------------------


@dataclass
class WriterSignatures:
    """Endpoints/writers sign records; readers verify but cannot forge."""

    signing_key: RSAPrivateKey

    def protect(
        self, seq: int, content_type: int, context_id: int, payload: bytes
    ) -> bytes:
        signature = self.signing_key.sign(
            mac_input(seq, content_type, context_id, payload)
        )
        return payload + len(signature).to_bytes(2, "big") + signature

    @staticmethod
    def verify(
        verify_keys: Sequence[RSAPublicKey],
        seq: int,
        content_type: int,
        context_id: int,
        protected: bytes,
    ) -> bytes:
        """Verify against any authorized writer/endpoint key."""
        if len(protected) < 2:
            raise McTLSRecordError("record shorter than its signature trailer")
        # Trailer layout: payload || len(2) || signature.  Try each
        # authorized key's modulus size from the end of the record.
        for key in verify_keys:
            k = key.byte_length
            if len(protected) < 2 + k:
                continue
            length = int.from_bytes(protected[-(k + 2) : -k], "big")
            if length != k:
                continue
            payload = protected[: -(k + 2)]
            signature = protected[-k:]
            covered = mac_input(seq, content_type, context_id, payload)
            if key.verify(covered, signature):
                return payload
        raise McTLSRecordError("writer signature verification failed")

    def overhead_bytes(self) -> int:
        return 2 + self.signing_key.byte_length
