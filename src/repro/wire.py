"""Byte-level encoding helpers shared by the TLS and mcTLS codecs.

TLS encodes everything as big-endian integers and length-prefixed opaque
vectors with 1-, 2- or 3-byte length fields.  :class:`Writer` and
:class:`Reader` provide exactly those operations plus strict bounds
checking, so message codecs stay declarative.
"""

from __future__ import annotations


class DecodeError(Exception):
    """Raised when incoming bytes cannot be parsed as the expected shape."""


class Writer:
    """Accumulates a wire-format message."""

    def __init__(self) -> None:
        self._chunks = []

    def u8(self, value: int) -> "Writer":
        return self._uint(value, 1)

    def u16(self, value: int) -> "Writer":
        return self._uint(value, 2)

    def u24(self, value: int) -> "Writer":
        return self._uint(value, 3)

    def u32(self, value: int) -> "Writer":
        return self._uint(value, 4)

    def u64(self, value: int) -> "Writer":
        return self._uint(value, 8)

    def _uint(self, value: int, size: int) -> "Writer":
        if value < 0 or value >= 1 << (8 * size):
            raise ValueError(f"{value} does not fit in {size} bytes")
        self._chunks.append(value.to_bytes(size, "big"))
        return self

    def raw(self, data: bytes) -> "Writer":
        self._chunks.append(bytes(data))
        return self

    def vec8(self, data: bytes) -> "Writer":
        return self._vec(data, 1)

    def vec16(self, data: bytes) -> "Writer":
        return self._vec(data, 2)

    def vec24(self, data: bytes) -> "Writer":
        return self._vec(data, 3)

    def _vec(self, data: bytes, length_size: int) -> "Writer":
        if len(data) >= 1 << (8 * length_size):
            raise ValueError("vector too long for its length prefix")
        self._chunks.append(len(data).to_bytes(length_size, "big"))
        self._chunks.append(bytes(data))
        return self

    def string8(self, text: str) -> "Writer":
        return self.vec8(text.encode("utf-8"))

    def string16(self, text: str) -> "Writer":
        return self.vec16(text.encode("utf-8"))

    def bytes(self) -> bytes:
        return b"".join(self._chunks)

    def __len__(self) -> int:
        return sum(len(c) for c in self._chunks)


class Reader:
    """Consumes a wire-format message with strict bounds checking."""

    def __init__(self, data: bytes):
        self._data = data
        self._offset = 0

    @property
    def remaining(self) -> int:
        return len(self._data) - self._offset

    @property
    def exhausted(self) -> bool:
        return self.remaining == 0

    def expect_end(self) -> None:
        if not self.exhausted:
            raise DecodeError(f"{self.remaining} unexpected trailing bytes")

    def u8(self) -> int:
        return self._uint(1)

    def u16(self) -> int:
        return self._uint(2)

    def u24(self) -> int:
        return self._uint(3)

    def u32(self) -> int:
        return self._uint(4)

    def u64(self) -> int:
        return self._uint(8)

    def _uint(self, size: int) -> int:
        return int.from_bytes(self.raw(size), "big")

    def raw(self, n: int) -> bytes:
        if n < 0 or self._offset + n > len(self._data):
            raise DecodeError("message truncated")
        chunk = self._data[self._offset : self._offset + n]
        self._offset += n
        return chunk

    def rest(self) -> bytes:
        return self.raw(self.remaining)

    def vec8(self) -> bytes:
        return self.raw(self.u8())

    def vec16(self) -> bytes:
        return self.raw(self.u16())

    def vec24(self) -> bytes:
        return self.raw(self.u24())

    def string8(self) -> str:
        return self._decode_utf8(self.vec8())

    def string16(self) -> str:
        return self._decode_utf8(self.vec16())

    @staticmethod
    def _decode_utf8(data: bytes) -> str:
        try:
            return data.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise DecodeError("invalid UTF-8 in string field") from exc
