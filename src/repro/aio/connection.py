"""Asyncio driver for a single sans-I/O endpoint connection.

:class:`AsyncConnection` is the asyncio twin of
``repro.sockets.SocketConnection``: it owns a
:class:`asyncio.StreamReader` / :class:`asyncio.StreamWriter` pair and
pumps transport bytes through any :class:`repro.core.Connection` (plain
TLS, mcTLS, or the plaintext baseline).  The protocol object never sees
the event loop; everything stays ``receive_data()`` / ``data_to_send()``.

Flow control is honoured on both sides: reads go through the stream
reader (bounded buffer), writes ``drain()`` after every flush so a slow
peer back-pressures the sender instead of ballooning memory.
"""

from __future__ import annotations

import asyncio
from typing import Callable, List, Optional, Tuple

from repro.core import Connection
from repro.core.events import ApplicationData, Event
from repro.sockets import (
    MAX_PUMP_BYTES,
    RECV_SIZE,
    SessionEnded,
    drain_views,
    tune_socket,
)

__all__ = ["AsyncConnection", "SessionEnded", "connect"]


class AsyncConnection:
    """Drives a :class:`repro.core.Connection` over asyncio streams.

    ``default_timeout`` bounds every pump that does not pass an explicit
    timeout — servers set it from their idle-timeout knob so one stalled
    peer cannot pin a handler task forever.
    """

    def __init__(
        self,
        connection: Connection,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        default_timeout: float = 30.0,
    ):
        self.connection = connection
        self.reader = reader
        self.writer = writer
        self.default_timeout = default_timeout
        self.events: List[Event] = []
        self.bytes_in = 0
        self.bytes_out = 0
        sock = writer.get_extra_info("socket")
        if sock is not None:
            tune_socket(sock)

    async def flush(self) -> None:
        views = drain_views(self.connection)
        if views:
            self.bytes_out += sum(len(v) for v in views)
            # Scatter-gather: hand the per-record chunks straight to the
            # transport instead of joining them in userspace first.
            self.writer.writelines(views)
            await self.writer.drain()

    def _on_eof(self) -> None:
        if self.connection.handshake_complete or self.connection.closed:
            raise SessionEnded("peer ended the session")
        raise ConnectionError("peer closed the connection mid-handshake")

    async def pump_until(
        self,
        predicate: Callable[[], bool],
        timeout: Optional[float] = None,
        max_bytes: int = MAX_PUMP_BYTES,
    ) -> None:
        """Receive and process until ``predicate()`` holds.

        Bounded by a deadline (``timeout`` seconds over the whole pump,
        not per read) and by ``max_bytes`` of transport input, so a peer
        streaming garbage forever cannot pin the task.
        """
        if timeout is None:
            timeout = self.default_timeout
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        await self.flush()
        consumed = 0
        while not predicate():
            remaining = deadline - loop.time()
            if remaining <= 0:
                raise asyncio.TimeoutError(
                    f"pump_until deadline ({timeout:.1f}s) exceeded"
                )
            data = await asyncio.wait_for(self.reader.read(RECV_SIZE), remaining)
            if not data:
                self._on_eof()
            consumed += len(data)
            self.bytes_in += len(data)
            if consumed > max_bytes:
                raise ConnectionError(
                    f"pump_until consumed {consumed} bytes without progress "
                    f"(bound: {max_bytes})"
                )
            self.events.extend(self.connection.receive_data(data))
            await self.flush()

    async def handshake(self, timeout: Optional[float] = None) -> None:
        if not self.connection.handshake_complete:
            # start_handshake() is part of the Connection protocol: a
            # no-op on passive (server) sides, the ClientHello elsewhere.
            self.connection.start_handshake()
            # Protocols whose handshake completes instantly (plain TCP)
            # queue their HandshakeComplete during start; drain it.
            self.events.extend(self.connection.receive_data(b""))
        await self.pump_until(
            lambda: self.connection.handshake_complete, timeout
        )

    async def send(self, data: bytes, context_id: Optional[int] = None) -> None:
        if context_id is None:
            self.connection.send_application_data(data)
        else:
            self.connection.send_application_data(data, context_id=context_id)
        await self.flush()

    async def recv_app_data(self, timeout: Optional[float] = None):
        """Wait for the next application-data event.

        Raises :class:`SessionEnded` if the session ends first (by
        close_notify or the peer's orderly EOF) — identical half-close
        behaviour to the threaded runtime.
        """

        def ready():
            return self.connection.closed or any(
                isinstance(e, ApplicationData) for e in self.events
            )

        await self.pump_until(ready, timeout)
        for i, event in enumerate(self.events):
            if isinstance(event, ApplicationData):
                return self.events.pop(i)
        raise SessionEnded("session closed before application data")

    async def close(self) -> None:
        try:
            self.connection.close()
            await self.flush()
        except (ConnectionError, OSError):
            pass
        finally:
            self.writer.close()
            try:
                await self.writer.wait_closed()
            except (ConnectionError, OSError):
                pass


async def connect(
    addr: Tuple[str, int],
    connection: Connection,
    timeout: float = 10.0,
    default_timeout: float = 30.0,
) -> AsyncConnection:
    """Dial ``addr`` and wrap ``connection`` over the stream pair."""
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(*addr), timeout
    )
    return AsyncConnection(
        connection, reader, writer, default_timeout=default_timeout
    )
