"""Concurrent load generator for the serving runtimes (§5.2's workload).

Drives many client sessions against a serving chain over real sockets
and reports what a capacity evaluation needs: sustained connections/sec
and handshake-latency percentiles.

Two arrival models:

* **closed loop** (default) — ``concurrency`` sessions are kept in
  flight at all times; a new session starts the moment one finishes.
  This measures sustainable capacity (the paper's Fig. 5 question).
* **open loop** — ``rate`` connections/sec are *launched* on a fixed
  schedule regardless of completions (still bounded by ``concurrency``
  as a safety cap, so an overloaded server queues rather than forking
  unbounded work).  This measures behaviour at a target offered load.

``resume_ratio`` marks that fraction of sessions as resumption
candidates: the factory receives ``resume=True`` and should build the
client against a shared ``ClientSessionStore`` so abbreviated handshakes
actually happen (the first such session necessarily does a full
handshake and seeds the store).  ``ticket_ratio`` further splits the
resumption candidates: that fraction resume via stateless session
tickets (factory called with ``ticket=True``), the rest via the
server-side session cache — the knob that compares O(1)-server-memory
resumption against the stateful kind.

A thread-per-connection twin (:func:`run_load_threaded`) drives the same
workload through ``repro.sockets`` so the two runtimes can be compared
at equal concurrency, and :func:`run_load_mp` forks the async generator
across processes — a single Python client process saturates one core on
handshake crypto long before a sharded server does, so measuring a
multi-worker server needs a multi-process client.
"""

from __future__ import annotations

import asyncio
import math
import multiprocessing
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.aio.connection import AsyncConnection
from repro.aio.connection import connect as aio_connect
from repro.sockets import connect as blocking_connect

__all__ = [
    "LoadResult",
    "PeriodicResult",
    "merge_load_results",
    "percentile",
    "run_load",
    "run_load_mp",
    "run_load_threaded",
    "run_periodic",
]


def percentile(sorted_values: List[float], p: float) -> float:
    """Percentile of an ascending list.

    Small samples (n < 100) use the nearest-rank definition: linear
    interpolation between order statistics systematically under-reports
    tail percentiles when the tail is sparse — with 20 samples the
    interpolated p99 lands a fraction of the way from the largest value
    back toward the second largest, hiding the very outlier a p99 is
    supposed to surface.  From n >= 100 the tail holds enough samples
    for interpolation to refine rather than dilute the estimate.
    """
    if not sorted_values:
        return float("nan")
    n = len(sorted_values)
    if n == 1:
        return sorted_values[0]
    if n < 100:
        # Nearest rank: the smallest value with >= p% of samples at or
        # below it.
        rank = math.ceil((p / 100.0) * n)
        return sorted_values[min(max(rank, 1), n) - 1]
    rank = (p / 100.0) * (n - 1)
    low = int(rank)
    high = min(low + 1, n - 1)
    frac = rank - low
    return sorted_values[low] * (1 - frac) + sorted_values[high] * frac


@dataclass
class LoadResult:
    """Aggregated outcome of one load run."""

    runtime: str  # "async" | "threaded"
    requested: int
    completed: int = 0
    failed: int = 0
    resumed: int = 0
    concurrency: int = 0
    rate: Optional[float] = None
    duration_s: float = 0.0
    handshake_latencies: List[float] = field(default_factory=list)
    errors: Dict[str, int] = field(default_factory=dict)

    @property
    def conn_per_s(self) -> float:
        if self.duration_s <= 0:
            return 0.0
        return self.completed / self.duration_s

    def latency_percentiles(self) -> Dict[str, float]:
        values = sorted(self.handshake_latencies)
        return {
            "p50": percentile(values, 50),
            "p95": percentile(values, 95),
            "p99": percentile(values, 99),
        }

    def to_dict(self) -> Dict[str, object]:
        return {
            "runtime": self.runtime,
            "requested": self.requested,
            "completed": self.completed,
            "failed": self.failed,
            "resumed": self.resumed,
            "concurrency": self.concurrency,
            "rate": self.rate,
            "duration_s": round(self.duration_s, 4),
            "conn_per_s": round(self.conn_per_s, 2),
            "handshake_latency_s": {
                k: round(v, 5) for k, v in self.latency_percentiles().items()
            },
            "errors": dict(self.errors),
        }

    def _record_error(self, exc: BaseException) -> None:
        self.failed += 1
        name = type(exc).__name__
        self.errors[name] = self.errors.get(name, 0) + 1


@dataclass
class PeriodicResult:
    """Outcome of one periodic small-record run (the industrial workload).

    Unlike :class:`LoadResult`, the interesting latencies here are *per
    record*, not per handshake: an industrial controller cares whether
    every 10 ms sensor report clears the chain inside its deadline, so
    the p99 of record round-trip latency is the headline number.
    """

    runtime: str
    requested: int  # records requested per session, summed
    record_size: int
    period_s: float
    sessions: int = 0
    completed: int = 0
    failed: int = 0
    duration_s: float = 0.0
    latencies: List[float] = field(default_factory=list)
    errors: Dict[str, int] = field(default_factory=dict)

    def latency_percentiles(self) -> Dict[str, float]:
        values = sorted(self.latencies)
        return {
            "p50": percentile(values, 50),
            "p95": percentile(values, 95),
            "p99": percentile(values, 99),
        }

    def to_dict(self) -> Dict[str, object]:
        return {
            "runtime": self.runtime,
            "requested": self.requested,
            "record_size": self.record_size,
            "period_s": self.period_s,
            "sessions": self.sessions,
            "completed": self.completed,
            "failed": self.failed,
            "duration_s": round(self.duration_s, 4),
            "record_latency_s": {
                k: round(v, 6) for k, v in self.latency_percentiles().items()
            },
            "errors": dict(self.errors),
        }

    def _record_error(self, exc: BaseException) -> None:
        self.failed += 1
        name = type(exc).__name__
        self.errors[name] = self.errors.get(name, 0) + 1


async def run_periodic(
    addr: Tuple[str, int],
    client_factory: Callable[..., object],
    records: int = 100,
    record_size: int = 32,
    period_s: float = 0.01,
    sessions: int = 1,
    context_id: Optional[int] = None,
    handshake_timeout: float = 60.0,
    io_timeout: float = 60.0,
) -> PeriodicResult:
    """Drive small periodic records over long-lived sessions (Madtls's
    industrial traffic shape: tiny sensor/actuator reports on a fixed
    cycle, each with a latency deadline).

    Each of ``sessions`` connections handshakes once, then sends a
    ``record_size``-byte record every ``period_s`` seconds on an open
    loop — launches stay on the wall-clock schedule even when an echo
    runs long, so queueing shows up in the tail latencies instead of
    stretching the run.  One record is in flight per session at a time
    (send → await echo), matching a request/confirm control loop.
    """
    if records < 1:
        raise ValueError("records must be >= 1")
    if record_size < 1:
        raise ValueError("record_size must be >= 1")
    result = PeriodicResult(
        runtime="async",
        requested=records * sessions,
        record_size=record_size,
        period_s=period_s,
        sessions=sessions,
    )
    loop = asyncio.get_running_loop()
    start = loop.time()

    async def one_session(session_index: int) -> None:
        conn: Optional[AsyncConnection] = None
        try:
            conn = await aio_connect(
                addr, client_factory(resume=False), default_timeout=io_timeout
            )
            await conn.handshake(handshake_timeout)
            session_start = loop.time()
            for i in range(records):
                delay = session_start + i * period_s - loop.time()
                if delay > 0:
                    await asyncio.sleep(delay)
                payload = bytes([(session_index + i) & 0xFF]) * record_size
                t0 = loop.time()
                await conn.send(payload, context_id=context_id)
                reply = await conn.recv_app_data(io_timeout)
                if reply.data != payload:
                    raise ValueError("echo mismatch")
                result.latencies.append(loop.time() - t0)
                result.completed += 1
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            result._record_error(exc)
        finally:
            if conn is not None:
                await conn.close()

    await asyncio.gather(*(one_session(i) for i in range(sessions)))
    result.duration_s = loop.time() - start
    return result


def _plan_resume_flags(connections: int, resume_ratio: float) -> List[bool]:
    """Evenly spread ``resume_ratio`` of True across the run (not a
    random draw: load runs should be reproducible)."""
    if resume_ratio <= 0:
        return [False] * connections
    flags = []
    acc = 0.0
    for _ in range(connections):
        acc += resume_ratio
        if acc >= 1.0 - 1e-9:
            acc -= 1.0
            flags.append(True)
        else:
            flags.append(False)
    return flags


def _plan_session_flags(
    connections: int, resume_ratio: float, ticket_ratio: float
) -> List[Tuple[bool, bool]]:
    """Per-session ``(resume, ticket)`` plan, both spreads deterministic.

    ``ticket_ratio`` applies *within* the resumption candidates: 0.0
    means all candidates use the session cache, 1.0 means all use
    tickets, 0.5 alternates.
    """
    resume_flags = _plan_resume_flags(connections, resume_ratio)
    plan: List[Tuple[bool, bool]] = []
    acc = 0.0
    for resume in resume_flags:
        ticket = False
        if resume and ticket_ratio > 0:
            acc += ticket_ratio
            if acc >= 1.0 - 1e-9:
                acc -= 1.0
                ticket = True
        plan.append((resume, ticket))
    return plan


def merge_load_results(
    results: List["LoadResult"], runtime: str = "mp"
) -> "LoadResult":
    """Fold per-process results into one: counters add, latency samples
    concatenate, duration is the slowest process (they ran in parallel)."""
    merged = LoadResult(
        runtime=runtime,
        requested=sum(r.requested for r in results),
        concurrency=sum(r.concurrency for r in results),
        rate=None,
    )
    rates = [r.rate for r in results if r.rate is not None]
    if rates:
        merged.rate = sum(rates)
    for r in results:
        merged.completed += r.completed
        merged.failed += r.failed
        merged.resumed += r.resumed
        merged.handshake_latencies.extend(r.handshake_latencies)
        for name, count in r.errors.items():
            merged.errors[name] = merged.errors.get(name, 0) + count
        merged.duration_s = max(merged.duration_s, r.duration_s)
    return merged


async def run_load(
    addr: Tuple[str, int],
    client_factory: Callable[..., object],
    connections: int = 100,
    concurrency: int = 50,
    rate: Optional[float] = None,
    resume_ratio: float = 0.0,
    ticket_ratio: float = 0.0,
    payload: bytes = b"ping",
    context_id: Optional[int] = None,
    handshake_timeout: float = 60.0,
    io_timeout: float = 60.0,
) -> LoadResult:
    """Drive ``connections`` sessions against ``addr`` (async runtime).

    ``client_factory(resume: bool)`` must return a fresh sans-I/O client
    connection.  Each session handshakes, optionally echoes ``payload``
    once (skipped when ``payload`` is empty), and closes.  When
    ``ticket_ratio`` > 0 the factory is called with an additional
    ``ticket`` keyword selecting stateless-ticket resumption for that
    fraction of the resumption candidates.
    """
    result = LoadResult(
        runtime="async",
        requested=connections,
        concurrency=concurrency,
        rate=rate,
    )
    sem = asyncio.Semaphore(concurrency)
    loop = asyncio.get_running_loop()
    plan = _plan_session_flags(connections, resume_ratio, ticket_ratio)
    use_ticket_kwarg = ticket_ratio > 0
    start = loop.time()

    async def one(index: int, resume: bool, ticket: bool) -> None:
        if rate is not None:
            # Open loop: hold this session until its scheduled launch.
            delay = start + index / rate - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
        async with sem:
            conn: Optional[AsyncConnection] = None
            try:
                if use_ticket_kwarg:
                    client = client_factory(resume=resume, ticket=ticket)
                else:
                    client = client_factory(resume=resume)
                conn = await aio_connect(
                    addr,
                    client,
                    default_timeout=io_timeout,
                )
                t0 = loop.time()
                await conn.handshake(handshake_timeout)
                result.handshake_latencies.append(loop.time() - t0)
                if conn.connection.resumed:
                    result.resumed += 1
                if payload:
                    await conn.send(payload, context_id=context_id)
                    reply = await conn.recv_app_data(io_timeout)
                    if reply.data != payload:
                        raise ValueError("echo mismatch")
                result.completed += 1
            except asyncio.CancelledError:
                raise
            except Exception as exc:
                result._record_error(exc)
            finally:
                if conn is not None:
                    await conn.close()

    await asyncio.gather(
        *(one(i, resume, ticket) for i, (resume, ticket) in enumerate(plan))
    )
    result.duration_s = loop.time() - start
    return result


def run_load_threaded(
    addr: Tuple[str, int],
    client_factory: Callable[..., object],
    connections: int = 100,
    concurrency: int = 50,
    resume_ratio: float = 0.0,
    ticket_ratio: float = 0.0,
    payload: bytes = b"ping",
    context_id: Optional[int] = None,
    handshake_timeout: float = 60.0,
    io_timeout: float = 60.0,
) -> LoadResult:
    """The same closed-loop workload over ``repro.sockets`` threads —
    the baseline the async runtime is compared against."""
    result = LoadResult(
        runtime="threaded", requested=connections, concurrency=concurrency
    )
    sem = threading.Semaphore(concurrency)
    lock = threading.Lock()
    plan = _plan_session_flags(connections, resume_ratio, ticket_ratio)
    use_ticket_kwarg = ticket_ratio > 0
    start = time.perf_counter()

    def one(resume: bool, ticket: bool) -> None:
        with sem:
            conn = None
            try:
                if use_ticket_kwarg:
                    client = client_factory(resume=resume, ticket=ticket)
                else:
                    client = client_factory(resume=resume)
                conn = blocking_connect(addr, client)
                t0 = time.perf_counter()
                conn.handshake(handshake_timeout)
                latency = time.perf_counter() - t0
                resumed = conn.connection.resumed
                if payload:
                    conn.send(payload, context_id=context_id)
                    reply = conn.recv_app_data(io_timeout)
                    if reply.data != payload:
                        raise ValueError("echo mismatch")
                with lock:
                    result.handshake_latencies.append(latency)
                    result.completed += 1
                    if resumed:
                        result.resumed += 1
            except Exception as exc:
                with lock:
                    result._record_error(exc)
            finally:
                if conn is not None:
                    try:
                        conn.close()
                    except (ConnectionError, OSError):
                        pass

    threads = [
        threading.Thread(target=one, args=(resume, ticket), daemon=True)
        for resume, ticket in plan
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    result.duration_s = time.perf_counter() - start
    return result


def _mp_load_child(pipe, addr, client_factory, kwargs) -> None:
    """Forked child: run one async load shard and ship the result back."""
    try:
        res = asyncio.run(run_load(addr, client_factory, **kwargs))
        pipe.send(("ok", res))
    except Exception as exc:  # pragma: no cover - defensive
        pipe.send(("err", f"{type(exc).__name__}: {exc}"))
    finally:
        pipe.close()


def run_load_mp(
    addr: Tuple[str, int],
    client_factory: Callable[..., object],
    connections: int = 100,
    concurrency: int = 50,
    processes: int = 2,
    rate: Optional[float] = None,
    resume_ratio: float = 0.0,
    ticket_ratio: float = 0.0,
    payload: bytes = b"ping",
    context_id: Optional[int] = None,
    handshake_timeout: float = 60.0,
    io_timeout: float = 60.0,
) -> LoadResult:
    """Fork ``processes`` client generators and merge their results.

    Each child runs :func:`run_load` over its shard of ``connections``
    with its own event loop and its own copies of whatever the factory
    closure captured — so resumption stores are per-process, exactly
    like independent client machines.  Requires the ``fork`` start
    method (closures are inherited, not pickled).
    """
    if processes < 1:
        raise ValueError("processes must be >= 1")
    if "fork" not in multiprocessing.get_all_start_methods():
        raise RuntimeError("run_load_mp requires the fork start method")
    ctx = multiprocessing.get_context("fork")
    shards = [
        connections // processes + (1 if i < connections % processes else 0)
        for i in range(processes)
    ]
    shards = [n for n in shards if n > 0]
    per_conc = max(1, concurrency // max(1, len(shards)))
    children = []
    for n in shards:
        kwargs = dict(
            connections=n,
            concurrency=per_conc,
            rate=(rate / len(shards)) if rate is not None else None,
            resume_ratio=resume_ratio,
            ticket_ratio=ticket_ratio,
            payload=payload,
            context_id=context_id,
            handshake_timeout=handshake_timeout,
            io_timeout=io_timeout,
        )
        parent_pipe, child_pipe = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=_mp_load_child,
            args=(child_pipe, addr, client_factory, kwargs),
            daemon=True,
        )
        proc.start()
        child_pipe.close()
        children.append((proc, parent_pipe))

    results: List[LoadResult] = []
    errors: List[str] = []
    for proc, pipe in children:
        try:
            tag, payload_msg = pipe.recv()
        except EOFError:
            tag, payload_msg = "err", "client process died without a result"
        if tag == "ok":
            results.append(payload_msg)
        else:
            errors.append(payload_msg)
        proc.join()
        pipe.close()
    if not results:
        raise RuntimeError(
            "all load-generator processes failed: " + "; ".join(errors)
        )
    merged = merge_load_results(results, runtime="mp")
    for err in errors:
        merged.errors[err] = merged.errors.get(err, 0) + 1
    return merged
