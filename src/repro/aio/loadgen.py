"""Concurrent load generator for the serving runtimes (§5.2's workload).

Drives many client sessions against a serving chain over real sockets
and reports what a capacity evaluation needs: sustained connections/sec
and handshake-latency percentiles.

Two arrival models:

* **closed loop** (default) — ``concurrency`` sessions are kept in
  flight at all times; a new session starts the moment one finishes.
  This measures sustainable capacity (the paper's Fig. 5 question).
* **open loop** — ``rate`` connections/sec are *launched* on a fixed
  schedule regardless of completions (still bounded by ``concurrency``
  as a safety cap, so an overloaded server queues rather than forking
  unbounded work).  This measures behaviour at a target offered load.

``resume_ratio`` marks that fraction of sessions as resumption
candidates: the factory receives ``resume=True`` and should build the
client against a shared ``ClientSessionStore`` so abbreviated handshakes
actually happen (the first such session necessarily does a full
handshake and seeds the store).

A thread-per-connection twin (:func:`run_load_threaded`) drives the same
workload through ``repro.sockets`` so the two runtimes can be compared
at equal concurrency.
"""

from __future__ import annotations

import asyncio
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.aio.connection import AsyncConnection
from repro.aio.connection import connect as aio_connect
from repro.sockets import connect as blocking_connect

__all__ = ["LoadResult", "percentile", "run_load", "run_load_threaded"]


def percentile(sorted_values: List[float], p: float) -> float:
    """Linear-interpolated percentile of an ascending list."""
    if not sorted_values:
        return float("nan")
    if len(sorted_values) == 1:
        return sorted_values[0]
    rank = (p / 100.0) * (len(sorted_values) - 1)
    low = int(rank)
    high = min(low + 1, len(sorted_values) - 1)
    frac = rank - low
    return sorted_values[low] * (1 - frac) + sorted_values[high] * frac


@dataclass
class LoadResult:
    """Aggregated outcome of one load run."""

    runtime: str  # "async" | "threaded"
    requested: int
    completed: int = 0
    failed: int = 0
    resumed: int = 0
    concurrency: int = 0
    rate: Optional[float] = None
    duration_s: float = 0.0
    handshake_latencies: List[float] = field(default_factory=list)
    errors: Dict[str, int] = field(default_factory=dict)

    @property
    def conn_per_s(self) -> float:
        if self.duration_s <= 0:
            return 0.0
        return self.completed / self.duration_s

    def latency_percentiles(self) -> Dict[str, float]:
        values = sorted(self.handshake_latencies)
        return {
            "p50": percentile(values, 50),
            "p95": percentile(values, 95),
            "p99": percentile(values, 99),
        }

    def to_dict(self) -> Dict[str, object]:
        return {
            "runtime": self.runtime,
            "requested": self.requested,
            "completed": self.completed,
            "failed": self.failed,
            "resumed": self.resumed,
            "concurrency": self.concurrency,
            "rate": self.rate,
            "duration_s": round(self.duration_s, 4),
            "conn_per_s": round(self.conn_per_s, 2),
            "handshake_latency_s": {
                k: round(v, 5) for k, v in self.latency_percentiles().items()
            },
            "errors": dict(self.errors),
        }

    def _record_error(self, exc: BaseException) -> None:
        self.failed += 1
        name = type(exc).__name__
        self.errors[name] = self.errors.get(name, 0) + 1


def _plan_resume_flags(connections: int, resume_ratio: float) -> List[bool]:
    """Evenly spread ``resume_ratio`` of True across the run (not a
    random draw: load runs should be reproducible)."""
    if resume_ratio <= 0:
        return [False] * connections
    flags = []
    acc = 0.0
    for _ in range(connections):
        acc += resume_ratio
        if acc >= 1.0 - 1e-9:
            acc -= 1.0
            flags.append(True)
        else:
            flags.append(False)
    return flags


async def run_load(
    addr: Tuple[str, int],
    client_factory: Callable[..., object],
    connections: int = 100,
    concurrency: int = 50,
    rate: Optional[float] = None,
    resume_ratio: float = 0.0,
    payload: bytes = b"ping",
    context_id: Optional[int] = None,
    handshake_timeout: float = 60.0,
    io_timeout: float = 60.0,
) -> LoadResult:
    """Drive ``connections`` sessions against ``addr`` (async runtime).

    ``client_factory(resume: bool)`` must return a fresh sans-I/O client
    connection.  Each session handshakes, optionally echoes ``payload``
    once (skipped when ``payload`` is empty), and closes.
    """
    result = LoadResult(
        runtime="async",
        requested=connections,
        concurrency=concurrency,
        rate=rate,
    )
    sem = asyncio.Semaphore(concurrency)
    loop = asyncio.get_running_loop()
    flags = _plan_resume_flags(connections, resume_ratio)
    start = loop.time()

    async def one(index: int, resume: bool) -> None:
        if rate is not None:
            # Open loop: hold this session until its scheduled launch.
            delay = start + index / rate - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
        async with sem:
            conn: Optional[AsyncConnection] = None
            try:
                conn = await aio_connect(
                    addr,
                    client_factory(resume=resume),
                    default_timeout=io_timeout,
                )
                t0 = loop.time()
                await conn.handshake(handshake_timeout)
                result.handshake_latencies.append(loop.time() - t0)
                if conn.connection.resumed:
                    result.resumed += 1
                if payload:
                    await conn.send(payload, context_id=context_id)
                    reply = await conn.recv_app_data(io_timeout)
                    if reply.data != payload:
                        raise ValueError("echo mismatch")
                result.completed += 1
            except asyncio.CancelledError:
                raise
            except Exception as exc:
                result._record_error(exc)
            finally:
                if conn is not None:
                    await conn.close()

    await asyncio.gather(
        *(one(i, flag) for i, flag in enumerate(flags))
    )
    result.duration_s = loop.time() - start
    return result


def run_load_threaded(
    addr: Tuple[str, int],
    client_factory: Callable[..., object],
    connections: int = 100,
    concurrency: int = 50,
    resume_ratio: float = 0.0,
    payload: bytes = b"ping",
    context_id: Optional[int] = None,
    handshake_timeout: float = 60.0,
    io_timeout: float = 60.0,
) -> LoadResult:
    """The same closed-loop workload over ``repro.sockets`` threads —
    the baseline the async runtime is compared against."""
    result = LoadResult(
        runtime="threaded", requested=connections, concurrency=concurrency
    )
    sem = threading.Semaphore(concurrency)
    lock = threading.Lock()
    flags = _plan_resume_flags(connections, resume_ratio)
    start = time.perf_counter()

    def one(resume: bool) -> None:
        with sem:
            conn = None
            try:
                conn = blocking_connect(addr, client_factory(resume=resume))
                t0 = time.perf_counter()
                conn.handshake(handshake_timeout)
                latency = time.perf_counter() - t0
                resumed = conn.connection.resumed
                if payload:
                    conn.send(payload, context_id=context_id)
                    reply = conn.recv_app_data(io_timeout)
                    if reply.data != payload:
                        raise ValueError("echo mismatch")
                with lock:
                    result.handshake_latencies.append(latency)
                    result.completed += 1
                    if resumed:
                        result.resumed += 1
            except Exception as exc:
                with lock:
                    result._record_error(exc)
            finally:
                if conn is not None:
                    try:
                        conn.close()
                    except (ConnectionError, OSError):
                        pass

    threads = [
        threading.Thread(target=one, args=(flag,), daemon=True)
        for flag in flags
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    result.duration_s = time.perf_counter() - start
    return result
