"""``repro.aio`` — the asyncio serving runtime.

The concurrent twin of ``repro.sockets``: the same surface
(``connect`` / ``EndpointServer`` / ``RelayServer``, prefixed ``Async``)
over asyncio streams, plus a load generator.  Protocol logic stays in
the sans-I/O cores; this package is scheduling, backpressure, timeouts,
stats and shutdown — the parts a serving deployment needs and a demo
doesn't.
"""

from repro.aio.connection import AsyncConnection, SessionEnded, connect
from repro.aio.loadgen import (
    LoadResult,
    PeriodicResult,
    merge_load_results,
    percentile,
    run_load,
    run_load_mp,
    run_load_threaded,
    run_periodic,
)
from repro.aio.server import AsyncEndpointServer, AsyncRelayServer, ServerStats

__all__ = [
    "AsyncConnection",
    "AsyncEndpointServer",
    "AsyncRelayServer",
    "LoadResult",
    "PeriodicResult",
    "ServerStats",
    "SessionEnded",
    "connect",
    "merge_load_results",
    "percentile",
    "run_load",
    "run_load_mp",
    "run_load_threaded",
    "run_periodic",
]
