"""Production-shaped asyncio servers for endpoints and middleboxes.

Two servers, mirroring ``repro.sockets``:

* :class:`AsyncEndpointServer` — accepts connections and runs a fresh
  sans-I/O server connection (TLS / mcTLS / plain) plus an async user
  handler for each;
* :class:`AsyncRelayServer` — accepts downstream connections and relays
  them upstream through a two-sided relay object (mcTLS middlebox,
  SplitTLS proxy, blind relay), one relay instance per connection.

Both are built for load, not demos:

* **accept-backpressure** — a max-concurrent-connections semaphore is
  acquired *before* ``accept()``; excess connections queue in the kernel
  backlog instead of spawning unbounded tasks;
* **timeouts** — a handshake deadline and an idle (per-read) deadline
  per connection, so stalled or malicious peers cannot pin tasks;
* **flow control** — every write path drains, so a slow reader
  back-pressures the pipeline instead of buffering without bound;
* **error isolation** — any per-connection failure (protocol garbage
  from a fault-injected peer included) ends that connection only; the
  accept loop never sees it;
* **graceful shutdown** — :meth:`stop` with ``graceful=True`` closes the
  listener, lets in-flight sessions finish, and only then returns;
  ``graceful=False`` cancels them;
* **stats** — a :class:`ServerStats` ledger per server, including
  session-cache hit rates when a ``SessionCache`` is attached.
"""

from __future__ import annotations

import asyncio
import socket
from typing import Awaitable, Callable, Dict, Optional, Set, Tuple

from repro.aio.connection import AsyncConnection
from repro.core import Connection, RelayProcessor
from repro.core.instrument import Instruments, ServerStats
from repro.sockets import RECV_SIZE, SessionEnded, drain_views, tune_socket

# ServerStats moved to repro.core.instrument (shared with the threaded
# runtime); re-exported here for compatibility.
__all__ = ["AsyncEndpointServer", "AsyncRelayServer", "ServerStats"]


class _AsyncServerBase:
    """Shared accept loop: semaphore-gated, task-tracked, stoppable."""

    def __init__(
        self,
        listen_addr: Tuple[str, int],
        max_connections: int = 256,
        backlog: int = 512,
        instruments: Optional[Instruments] = None,
        listen_sock: Optional[socket.socket] = None,
    ):
        self.listen_addr = listen_addr
        self.max_connections = max_connections
        self.backlog = backlog
        self.instruments = instruments
        self.stats = ServerStats(instruments=instruments)
        self._listener: Optional[socket.socket] = None
        self._listen_sock = listen_sock
        self._sem: Optional[asyncio.Semaphore] = None
        self._accept_task: Optional[asyncio.Task] = None
        self._tasks: Set[asyncio.Task] = set()
        self._stopping = False

    @property
    def port(self) -> int:
        return self._listener.getsockname()[1]

    async def start(self) -> "_AsyncServerBase":
        if self._listen_sock is not None:
            # Pre-bound listener (worker pools: a SO_REUSEPORT sibling
            # socket, or one shared accept fd inherited across fork).
            self._listener = self._listen_sock
        else:
            self._listener = socket.create_server(
                self.listen_addr, backlog=self.backlog
            )
        tune_socket(self._listener)
        self._listener.setblocking(False)
        self._sem = asyncio.Semaphore(self.max_connections)
        self._accept_task = asyncio.create_task(self._accept_loop())
        return self

    async def _accept_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while not self._stopping:
            # Backpressure: hold the accept until a connection slot
            # frees up; pending peers wait in the kernel backlog.
            await self._sem.acquire()
            try:
                conn, _ = await loop.sock_accept(self._listener)
            except (OSError, asyncio.CancelledError):
                self._sem.release()
                return
            self.stats.accepted += 1
            self.stats.active += 1
            task = asyncio.create_task(self._guarded_handle(conn))
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)

    async def _guarded_handle(self, conn: socket.socket) -> None:
        try:
            await self._handle(conn)
        except asyncio.CancelledError:
            raise
        except Exception:
            # Nothing a single connection does may reach the accept
            # loop.  Specific failure accounting happens in _handle;
            # this is the last-resort bulkhead.
            self.stats.errors += 1
        finally:
            self.stats.active -= 1
            self._sem.release()
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass

    async def _handle(self, conn: socket.socket) -> None:
        raise NotImplementedError

    async def stop(self, graceful: bool = True, timeout: Optional[float] = None) -> None:
        """Stop accepting; finish (graceful) or cancel in-flight sessions."""
        self._stopping = True
        if self._accept_task is not None:
            self._accept_task.cancel()
            try:
                await self._accept_task
            except asyncio.CancelledError:
                pass
            self._accept_task = None
        if self._listener is not None:
            self._listener.close()
        tasks = set(self._tasks)
        if tasks:
            if not graceful:
                for task in tasks:
                    task.cancel()
            done, pending = await asyncio.wait(tasks, timeout=timeout)
            if pending:
                # Graceful drain exceeded its budget; cut the stragglers.
                for task in pending:
                    task.cancel()
                await asyncio.wait(pending)
        self._tasks.clear()


class AsyncEndpointServer(_AsyncServerBase):
    """Accepts connections and runs a fresh sans-I/O server connection
    plus an async user handler for each.

    ``handler`` is an async callable taking an :class:`AsyncConnection`
    whose handshake has **already completed** — the server owns the
    handshake (and its timeout) so stats and resumption accounting are
    uniform across handlers.

    When ``session_cache`` is given, ``connection_factory`` is called
    with the cache as its single argument, so all per-connection
    protocol objects share one server-side session cache (the
    deployment shape for resumption); otherwise it is called with no
    arguments.
    """

    def __init__(
        self,
        listen_addr: Tuple[str, int],
        connection_factory: Callable[..., Connection],
        handler: Callable[[AsyncConnection], Awaitable[None]],
        session_cache: Optional[object] = None,
        max_connections: int = 256,
        handshake_timeout: float = 30.0,
        idle_timeout: float = 30.0,
        backlog: int = 512,
        instruments: Optional[Instruments] = None,
        listen_sock: Optional[socket.socket] = None,
    ):
        super().__init__(
            listen_addr, max_connections, backlog, instruments, listen_sock
        )
        self.connection_factory = connection_factory
        self.handler = handler
        self.session_cache = session_cache
        self.handshake_timeout = handshake_timeout
        self.idle_timeout = idle_timeout

    def _make_connection(self) -> Connection:
        if self.session_cache is not None:
            connection = self.connection_factory(self.session_cache)
        else:
            connection = self.connection_factory()
        if self.instruments is not None:
            connection.instruments = self.instruments
        return connection

    def snapshot(self) -> Dict[str, object]:
        """Stats plus the session cache's hit/miss ledger, if attached."""
        snap: Dict[str, object] = self.stats.snapshot()
        cache_stats = getattr(self.session_cache, "stats", None)
        if cache_stats is not None:
            snap["session_cache"] = cache_stats.snapshot()
        return snap

    async def _handle(self, raw: socket.socket) -> None:
        reader, writer = await asyncio.open_connection(sock=raw)
        conn = AsyncConnection(
            self._make_connection(),
            reader,
            writer,
            default_timeout=self.idle_timeout,
        )
        try:
            try:
                await conn.handshake(self.handshake_timeout)
            except asyncio.CancelledError:
                raise
            except Exception:
                self.stats.handshakes_failed += 1
                return
            self.stats.handshakes_ok += 1
            if conn.connection.resumed:
                self.stats.resumed += 1
            try:
                await self.handler(conn)
            except SessionEnded:
                pass  # peer finished cleanly mid-handler
            except asyncio.TimeoutError:
                self.stats.timeouts += 1
            except asyncio.CancelledError:
                raise
            except (ConnectionError, OSError):
                self.stats.errors += 1
            except Exception:
                self.stats.errors += 1
        finally:
            self.stats.bytes_in += conn.bytes_in
            self.stats.bytes_out += conn.bytes_out
            await conn.close()


class AsyncRelayServer(_AsyncServerBase):
    """Accepts downstream connections and relays them upstream through a
    two-sided relay object (one relay instance per connection).

    Half-close is propagated per direction: one side shutting down its
    write stream stops that pump but keeps the opposite direction
    draining until it too ends (a server may stream long after the
    client stops talking).  A relay raising on garbage input ends that
    session only.
    """

    def __init__(
        self,
        listen_addr: Tuple[str, int],
        upstream_addr: Tuple[str, int],
        relay_factory: Callable[[], RelayProcessor],
        max_connections: int = 256,
        idle_timeout: float = 30.0,
        connect_timeout: float = 10.0,
        backlog: int = 512,
        instruments: Optional[Instruments] = None,
    ):
        super().__init__(listen_addr, max_connections, backlog, instruments)
        self.upstream_addr = upstream_addr
        self.relay_factory = relay_factory
        self.idle_timeout = idle_timeout
        self.connect_timeout = connect_timeout

    def _make_relay(self) -> RelayProcessor:
        relay = self.relay_factory()
        if self.instruments is not None:
            relay.instruments = self.instruments
        return relay

    async def _handle(self, raw: socket.socket) -> None:
        relay = self._make_relay()
        try:
            up_reader, up_writer = await asyncio.wait_for(
                asyncio.open_connection(*self.upstream_addr),
                self.connect_timeout,
            )
        except (OSError, asyncio.TimeoutError):
            self.stats.errors += 1
            return
        up_sock = up_writer.get_extra_info("socket")
        if up_sock is not None:
            tune_socket(up_sock)
        down_reader, down_writer = await asyncio.open_connection(sock=raw)

        async def flush() -> None:
            # Scatter-gather: per-record (or per-burst) chunks go to the
            # transport as-is; no userspace join on the relay hot path.
            to_server = drain_views(relay, "data_to_server")
            if to_server:
                self.stats.bytes_out += sum(len(v) for v in to_server)
                up_writer.writelines(to_server)
            to_client = drain_views(relay, "data_to_client")
            if to_client:
                self.stats.bytes_out += sum(len(v) for v in to_client)
                down_writer.writelines(to_client)
            if to_server:
                await up_writer.drain()
            if to_client:
                await down_writer.drain()

        async def pump(reader, feed, other_writer) -> None:
            while True:
                data = await asyncio.wait_for(
                    reader.read(RECV_SIZE), self.idle_timeout
                )
                if not data:
                    # Half-close: relay the EOF after flushing whatever
                    # the relay still holds for the other side.
                    await flush()
                    try:
                        if other_writer.can_write_eof():
                            other_writer.write_eof()
                    except (OSError, RuntimeError):
                        pass
                    return
                self.stats.bytes_in += len(data)
                feed(data)
                await flush()

        pumps = [
            asyncio.create_task(
                pump(down_reader, relay.receive_from_client, up_writer)
            ),
            asyncio.create_task(
                pump(up_reader, relay.receive_from_server, down_writer)
            ),
        ]
        try:
            done, pending = await asyncio.wait(
                pumps, return_when=asyncio.FIRST_EXCEPTION
            )
            failed = [t for t in done if t.exception() is not None]
            if failed:
                if any(
                    isinstance(t.exception(), asyncio.TimeoutError)
                    for t in failed
                ):
                    self.stats.timeouts += 1
                else:
                    self.stats.errors += 1
        finally:
            for task in pumps:
                if not task.done():
                    task.cancel()
            await asyncio.gather(*pumps, return_exceptions=True)
            for writer in (up_writer, down_writer):
                writer.close()
            for writer in (up_writer, down_writer):
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass
