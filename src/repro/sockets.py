"""Real-socket transports for the sans-I/O protocol stacks.

The paper's §5.4 deployability argument is that mcTLS slots into
applications with minimal effort.  This module provides the blocking
socket glue: run any endpoint implementing the
:class:`repro.core.Connection` protocol over a TCP socket, and any
:class:`repro.core.RelayProcessor` (mcTLS middlebox, SplitTLS proxy,
blind relay) between a listening socket and an upstream connection.
The glue is generic — no per-protocol branches; everything a transport
needs is in the formal connection interface.

Everything is synchronous and thread-per-connection — deliberately
simple, since the protocol logic lives in the sans-I/O cores and this is
just plumbing (and what `examples/` uses for live demos).  The
production-shaped concurrent twin of this module is ``repro.aio``; the
two expose the same surface (``connect`` / ``EndpointServer`` /
``RelayServer``) so callers can switch with one import.
"""

from __future__ import annotations

import socket
import threading
from typing import Callable, Dict, List, Optional, Tuple

from repro.core import Connection, RelayProcessor
from repro.core.events import ApplicationData, Event
from repro.core.instrument import Instruments, ServerStats

RECV_SIZE = 65536

# A peer that streams garbage (e.g. a fault-injected mutator flipping
# length fields) can keep a pump loop consuming forever without ever
# satisfying its predicate.  Bound the damage: no sane handshake or
# single application exchange in this stack needs more than this many
# transport bytes.
MAX_PUMP_BYTES = 16 * 1024 * 1024

# Linux caps a single sendmsg at IOV_MAX (1024) iovecs.
_IOV_MAX = 1024


def drain_views(source, method: str = "data_to_send") -> List[bytes]:
    """Drain ``source``'s pending output as a chunk list.

    Uses the scatter-gather drain (``data_to_send_views`` et al.) when
    the object provides it, falling back to the joined drain so minimal
    :class:`repro.core.Connection` implementations (test doubles,
    third-party stacks) still work over this transport glue.
    """
    views_fn = getattr(source, method + "_views", None)
    if views_fn is not None:
        return views_fn()
    data = getattr(source, method)()
    return [data] if data else []


def sendmsg_all(sock: socket.socket, views: List[bytes]) -> int:
    """Send every chunk in ``views``, scatter-gather where possible.

    The sans-I/O cores queue one chunk per record (or per coalesced
    burst); ``sendmsg`` hands the kernel the whole list without a
    userspace join.  Handles partial sends by advancing through the
    chunk list, honours ``IOV_MAX``, and falls back to join +
    ``sendall`` on sockets without ``sendmsg``.  Returns bytes sent.
    """
    total = sum(len(v) for v in views)
    if not total:
        return 0
    if not hasattr(sock, "sendmsg"):  # pragma: no cover - exotic sockets
        sock.sendall(b"".join(views))
        return total
    queue = [v for v in views if v]
    while queue:
        sent = sock.sendmsg(queue[:_IOV_MAX])
        # Drop fully-sent chunks; trim a partially-sent head.
        i = 0
        while i < len(queue) and sent >= len(queue[i]):
            sent -= len(queue[i])
            i += 1
        if i:
            del queue[:i]
        if sent and queue:
            queue[0] = memoryview(queue[0])[sent:]
    return total


class SessionEnded(ConnectionError):
    """The peer ended the session cleanly (close_notify or orderly EOF).

    Subclasses :class:`ConnectionError` so existing ``except
    ConnectionError`` handlers keep working, while letting callers that
    care distinguish a clean end from a torn connection.
    """


def tune_socket(sock: socket.socket) -> None:
    """Apply the transport options every socket in this stack wants.

    ``TCP_NODELAY`` because the sans-I/O cores already emit whole flights
    (Nagle only adds latency between our record-sized writes);
    ``SO_REUSEADDR`` so benchmark/test servers can rebind a
    just-released port instead of tripping over TIME_WAIT.
    """
    try:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    except (OSError, AttributeError):  # pragma: no cover - non-TCP sockets
        pass
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    except (OSError, AttributeError):  # pragma: no cover
        pass


class SocketConnection:
    """Drives a :class:`repro.core.Connection` over a blocking socket."""

    def __init__(self, connection: Connection, sock: socket.socket):
        self.connection = connection
        self.sock = sock
        tune_socket(sock)
        self.events: List[Event] = []
        self.bytes_in = 0
        self.bytes_out = 0

    def flush(self) -> None:
        views = drain_views(self.connection)
        if views:
            self.bytes_out += sendmsg_all(self.sock, views)

    def _on_eof(self) -> None:
        """The peer half-closed.  After the handshake this is how plain
        TCP peers signal "done" (many don't bother with close_notify);
        mid-handshake it can only be a failure."""
        if self.connection.handshake_complete or self.connection.closed:
            raise SessionEnded("peer ended the session")
        raise ConnectionError("peer closed the connection mid-handshake")

    def pump_until(
        self,
        predicate: Callable[[], bool],
        timeout: float = 30.0,
        max_bytes: int = MAX_PUMP_BYTES,
    ) -> None:
        """Receive and process until ``predicate()`` holds.

        Bounded two ways: ``timeout`` on each receive, and ``max_bytes``
        of total transport input — a peer streaming garbage forever
        (fault mutators do) gets a ``ConnectionError``, not an unbounded
        loop.
        """
        self.sock.settimeout(timeout)
        self.flush()
        consumed = 0
        while not predicate():
            data = self.sock.recv(RECV_SIZE)
            if not data:
                self._on_eof()
            consumed += len(data)
            self.bytes_in += len(data)
            if consumed > max_bytes:
                raise ConnectionError(
                    f"pump_until consumed {consumed} bytes without progress "
                    f"(bound: {max_bytes})"
                )
            self.events.extend(self.connection.receive_data(data))
            self.flush()

    def handshake(self, timeout: float = 30.0) -> None:
        if not self.connection.handshake_complete:
            # start_handshake() is part of the Connection protocol: a
            # no-op on passive (server) sides, the ClientHello elsewhere.
            self.connection.start_handshake()
            # Protocols whose handshake completes instantly (plain TCP)
            # queue their HandshakeComplete during start; drain it.
            self.events.extend(self.connection.receive_data(b""))
        self.pump_until(lambda: self.connection.handshake_complete, timeout)

    def send(self, data: bytes, context_id: Optional[int] = None) -> None:
        if context_id is None:
            self.connection.send_application_data(data)
        else:
            self.connection.send_application_data(data, context_id=context_id)
        self.flush()

    def recv_app_data(self, timeout: float = 30.0):
        """Block until the next application-data event arrives.

        Raises :class:`SessionEnded` if the session ends first — whether
        by close_notify (the connection marks itself closed) or by the
        peer's orderly EOF — so half-close behaves identically to the
        asyncio runtime.
        """

        def ready():
            return self.connection.closed or any(
                isinstance(e, ApplicationData) for e in self.events
            )

        self.pump_until(ready, timeout)
        for i, event in enumerate(self.events):
            if isinstance(event, ApplicationData):
                return self.events.pop(i)
        raise SessionEnded("session closed before application data")

    def close(self) -> None:
        try:
            self.connection.close()
            self.flush()
        finally:
            self.sock.close()


class RelayServer:
    """Accepts downstream connections and relays them upstream through a
    :class:`repro.core.RelayProcessor` (one relay instance per
    connection).  Keeps a :class:`ServerStats` ledger like the endpoint
    servers; ``instruments`` (optional) is attached to every fresh relay
    object so middlebox-level counters aggregate across sessions."""

    def __init__(
        self,
        listen_addr: Tuple[str, int],
        upstream_addr: Tuple[str, int],
        relay_factory: Callable[[], RelayProcessor],
        instruments: Optional[Instruments] = None,
    ):
        self.listen_addr = listen_addr
        self.upstream_addr = upstream_addr
        self.relay_factory = relay_factory
        self.instruments = instruments
        self.stats = ServerStats(instruments=instruments)
        self._listener: Optional[socket.socket] = None
        self._threads: List[threading.Thread] = []
        self._stopping = threading.Event()

    @property
    def port(self) -> int:
        return self._listener.getsockname()[1]

    def snapshot(self) -> Dict[str, object]:
        return self.stats.snapshot()

    def start(self) -> "RelayServer":
        self._listener = socket.create_server(self.listen_addr)
        tune_socket(self._listener)
        self._listener.settimeout(0.2)
        thread = threading.Thread(target=self._accept_loop, daemon=True)
        thread.start()
        self._threads.append(thread)
        return self

    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                downstream, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            thread = threading.Thread(
                target=self._handle, args=(downstream,), daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def _make_relay(self) -> RelayProcessor:
        relay = self.relay_factory()
        if self.instruments is not None:
            relay.instruments = self.instruments
        return relay

    def _handle(self, downstream: socket.socket) -> None:
        relay = self._make_relay()
        self.stats.add(accepted=1, active=1)
        try:
            upstream = socket.create_connection(self.upstream_addr, timeout=10)
        except OSError:
            self.stats.add(errors=1, active=-1)
            downstream.close()
            return
        for sock in (downstream, upstream):
            tune_socket(sock)
            sock.settimeout(0.1)

        def flush() -> None:
            to_server = drain_views(relay, "data_to_server")
            if to_server:
                self.stats.add(bytes_out=sendmsg_all(upstream, to_server))
            to_client = drain_views(relay, "data_to_client")
            if to_client:
                self.stats.add(bytes_out=sendmsg_all(downstream, to_client))

        # Track EOF per direction: one side half-closing must not stop
        # the relay from draining the other (a server can keep streaming
        # a response after the client shuts down its write side).
        open_sides = {id(downstream): True, id(upstream): True}
        try:
            while not self._stopping.is_set() and any(open_sides.values()):
                moved = False
                for sock, feed in (
                    (downstream, relay.receive_from_client),
                    (upstream, relay.receive_from_server),
                ):
                    if not open_sides[id(sock)]:
                        continue
                    try:
                        data = sock.recv(RECV_SIZE)
                    except socket.timeout:
                        continue
                    except OSError:
                        return
                    if not data:
                        open_sides[id(sock)] = False
                        continue
                    moved = True
                    self.stats.add(bytes_in=len(data))
                    try:
                        feed(data)
                    except Exception:
                        # Garbage from one peer (or a fault mutator)
                        # kills this relay session, never the server.
                        self.stats.add(errors=1)
                        return
                    flush()
                if not moved:
                    flush()
        finally:
            self.stats.add(active=-1)
            downstream.close()
            upstream.close()

    def stop(self) -> None:
        self._stopping.set()
        if self._listener is not None:
            self._listener.close()


class EndpointServer:
    """Accepts connections and runs a fresh sans-I/O server connection
    plus a user handler for each.

    The server owns the handshake (handlers receive a
    :class:`SocketConnection` whose handshake has already completed, and
    may call :meth:`SocketConnection.handshake` again as a no-op), so
    stats and resumption accounting are uniform across handlers and
    symmetric with :class:`repro.aio.AsyncEndpointServer`.

    When ``session_cache`` is given, ``connection_factory`` is called
    with it as its single argument (instead of zero arguments) so every
    per-connection protocol object shares the one server-side
    :class:`repro.tls.sessioncache.SessionCache` — the deployment shape
    for resumption over real sockets.  ``instruments`` (optional) is
    attached to every per-connection protocol object, aggregating
    protocol-level counters across the server's lifetime.
    """

    def __init__(
        self,
        listen_addr: Tuple[str, int],
        connection_factory: Callable[..., Connection],
        handler: Callable[[SocketConnection], None],
        session_cache: Optional[object] = None,
        instruments: Optional[Instruments] = None,
        handshake_timeout: float = 30.0,
    ):
        self.listen_addr = listen_addr
        self.connection_factory = connection_factory
        self.handler = handler
        self.session_cache = session_cache
        self.instruments = instruments
        self.handshake_timeout = handshake_timeout
        self.stats = ServerStats(instruments=instruments)
        self._listener: Optional[socket.socket] = None
        self._stopping = threading.Event()

    @property
    def port(self) -> int:
        return self._listener.getsockname()[1]

    def _make_connection(self) -> Connection:
        if self.session_cache is not None:
            connection = self.connection_factory(self.session_cache)
        else:
            connection = self.connection_factory()
        if self.instruments is not None:
            connection.instruments = self.instruments
        return connection

    def snapshot(self) -> Dict[str, object]:
        """Stats plus the session cache's hit/miss ledger, if attached."""
        snap = self.stats.snapshot()
        cache_stats = getattr(self.session_cache, "stats", None)
        if cache_stats is not None:
            snap["session_cache"] = cache_stats.snapshot()
        return snap

    def start(self) -> "EndpointServer":
        self._listener = socket.create_server(self.listen_addr)
        tune_socket(self._listener)
        self._listener.settimeout(0.2)
        threading.Thread(target=self._accept_loop, daemon=True).start()
        return self

    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                sock, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            threading.Thread(
                target=self._handle, args=(sock,), daemon=True
            ).start()

    def _handle(self, sock: socket.socket) -> None:
        wrapper = SocketConnection(self._make_connection(), sock)
        self.stats.add(accepted=1, active=1)
        try:
            try:
                wrapper.handshake(self.handshake_timeout)
            except Exception:
                self.stats.add(handshakes_failed=1)
                return
            self.stats.add(handshakes_ok=1)
            if wrapper.connection.resumed:
                self.stats.add(resumed=1)
            try:
                self.handler(wrapper)
            except SessionEnded:
                pass  # peer finished cleanly mid-handler
            except socket.timeout:
                self.stats.add(timeouts=1)
            except (ConnectionError, OSError):
                self.stats.add(errors=1)
            except Exception:
                # A protocol error from a misbehaving peer (TLSError,
                # DecodeError, ...) ends this connection only.
                self.stats.add(errors=1)
        finally:
            self.stats.add(
                active=-1,
                bytes_in=wrapper.bytes_in,
                bytes_out=wrapper.bytes_out,
            )
            sock.close()

    def stop(self) -> None:
        self._stopping.set()
        if self._listener is not None:
            self._listener.close()


def connect(
    addr: Tuple[str, int], connection: Connection, timeout: float = 10.0
) -> SocketConnection:
    """Dial ``addr`` and wrap ``connection`` over the socket."""
    sock = socket.create_connection(addr, timeout=timeout)
    return SocketConnection(connection, sock)
