"""Real-socket transports for the sans-I/O protocol stacks.

The paper's §5.4 deployability argument is that mcTLS slots into
applications with minimal effort.  This module provides the blocking
socket glue: run any endpoint connection over a TCP socket, and any
two-sided relay (mcTLS middlebox, SplitTLS proxy, blind relay) between a
listening socket and an upstream connection.

Everything is synchronous and thread-per-connection — deliberately
simple, since the protocol logic lives in the sans-I/O cores and this is
just plumbing (and what `examples/` uses for live demos).
"""

from __future__ import annotations

import socket
import threading
from typing import Callable, List, Optional, Tuple

RECV_SIZE = 65536


class SocketConnection:
    """Drives a sans-I/O endpoint connection over a blocking socket."""

    def __init__(self, connection, sock: socket.socket):
        self.connection = connection
        self.sock = sock
        self.events: List[object] = []

    def flush(self) -> None:
        data = self.connection.data_to_send()
        if data:
            self.sock.sendall(data)

    def pump_until(self, predicate: Callable[[], bool], timeout: float = 30.0) -> None:
        """Receive and process until ``predicate()`` holds."""
        self.sock.settimeout(timeout)
        self.flush()
        while not predicate():
            data = self.sock.recv(RECV_SIZE)
            if not data:
                raise ConnectionError("peer closed the connection")
            self.events.extend(self.connection.receive_bytes(data))
            self.flush()

    def handshake(self, timeout: float = 30.0) -> None:
        if hasattr(self.connection, "start_handshake"):
            if not self.connection.handshake_complete:
                try:
                    self.connection.start_handshake()
                except Exception:
                    pass  # server side: passive
        self.pump_until(lambda: self.connection.handshake_complete, timeout)

    def send(self, data: bytes, context_id: Optional[int] = None) -> None:
        if context_id is None:
            self.connection.send_application_data(data)
        else:
            self.connection.send_application_data(data, context_id=context_id)
        self.flush()

    def recv_app_data(self, timeout: float = 30.0):
        """Block until the next application-data event arrives."""

        def have_data():
            return any(hasattr(e, "data") for e in self.events)

        self.pump_until(have_data, timeout)
        for i, event in enumerate(self.events):
            if hasattr(event, "data"):
                return self.events.pop(i)
        raise RuntimeError("unreachable")  # pragma: no cover

    def close(self) -> None:
        try:
            self.connection.close()
            self.flush()
        finally:
            self.sock.close()


class RelayServer:
    """Accepts downstream connections and relays them upstream through a
    two-sided relay object (one relay instance per connection)."""

    def __init__(
        self,
        listen_addr: Tuple[str, int],
        upstream_addr: Tuple[str, int],
        relay_factory: Callable[[], object],
    ):
        self.listen_addr = listen_addr
        self.upstream_addr = upstream_addr
        self.relay_factory = relay_factory
        self._listener: Optional[socket.socket] = None
        self._threads: List[threading.Thread] = []
        self._stopping = threading.Event()

    @property
    def port(self) -> int:
        return self._listener.getsockname()[1]

    def start(self) -> "RelayServer":
        self._listener = socket.create_server(self.listen_addr)
        self._listener.settimeout(0.2)
        thread = threading.Thread(target=self._accept_loop, daemon=True)
        thread.start()
        self._threads.append(thread)
        return self

    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                downstream, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            thread = threading.Thread(
                target=self._handle, args=(downstream,), daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def _handle(self, downstream: socket.socket) -> None:
        relay = self.relay_factory()
        try:
            upstream = socket.create_connection(self.upstream_addr, timeout=10)
        except OSError:
            downstream.close()
            return
        for sock in (downstream, upstream):
            sock.settimeout(0.1)

        def flush() -> None:
            to_server = relay.data_to_server()
            if to_server:
                upstream.sendall(to_server)
            to_client = relay.data_to_client()
            if to_client:
                downstream.sendall(to_client)

        try:
            open_ends = 2
            while not self._stopping.is_set() and open_ends:
                moved = False
                for sock, feed in (
                    (downstream, relay.receive_from_client),
                    (upstream, relay.receive_from_server),
                ):
                    try:
                        data = sock.recv(RECV_SIZE)
                    except socket.timeout:
                        continue
                    except OSError:
                        return
                    if not data:
                        open_ends -= 1
                        continue
                    moved = True
                    feed(data)
                    flush()
                if not moved:
                    flush()
        finally:
            downstream.close()
            upstream.close()

    def stop(self) -> None:
        self._stopping.set()
        if self._listener is not None:
            self._listener.close()


class EndpointServer:
    """Accepts connections and runs a fresh sans-I/O server connection
    plus a user handler for each."""

    def __init__(
        self,
        listen_addr: Tuple[str, int],
        connection_factory: Callable[[], object],
        handler: Callable[[SocketConnection], None],
    ):
        self.listen_addr = listen_addr
        self.connection_factory = connection_factory
        self.handler = handler
        self._listener: Optional[socket.socket] = None
        self._stopping = threading.Event()

    @property
    def port(self) -> int:
        return self._listener.getsockname()[1]

    def start(self) -> "EndpointServer":
        self._listener = socket.create_server(self.listen_addr)
        self._listener.settimeout(0.2)
        threading.Thread(target=self._accept_loop, daemon=True).start()
        return self

    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                sock, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            threading.Thread(
                target=self._handle, args=(sock,), daemon=True
            ).start()

    def _handle(self, sock: socket.socket) -> None:
        wrapper = SocketConnection(self.connection_factory(), sock)
        try:
            self.handler(wrapper)
        except (ConnectionError, OSError):
            pass
        finally:
            sock.close()

    def stop(self) -> None:
        self._stopping.set()
        if self._listener is not None:
            self._listener.close()


def connect(addr: Tuple[str, int], connection, timeout: float = 10.0) -> SocketConnection:
    """Dial ``addr`` and wrap ``connection`` over the socket."""
    sock = socket.create_connection(addr, timeout=timeout)
    return SocketConnection(connection, sock)
