"""Real-socket transports for the sans-I/O protocol stacks.

The paper's §5.4 deployability argument is that mcTLS slots into
applications with minimal effort.  This module provides the blocking
socket glue: run any endpoint connection over a TCP socket, and any
two-sided relay (mcTLS middlebox, SplitTLS proxy, blind relay) between a
listening socket and an upstream connection.

Everything is synchronous and thread-per-connection — deliberately
simple, since the protocol logic lives in the sans-I/O cores and this is
just plumbing (and what `examples/` uses for live demos).  The
production-shaped concurrent twin of this module is ``repro.aio``; the
two expose the same surface (``connect`` / ``EndpointServer`` /
``RelayServer``) so callers can switch with one import.
"""

from __future__ import annotations

import socket
import threading
from typing import Callable, List, Optional, Tuple

RECV_SIZE = 65536

# A peer that streams garbage (e.g. a fault-injected mutator flipping
# length fields) can keep a pump loop consuming forever without ever
# satisfying its predicate.  Bound the damage: no sane handshake or
# single application exchange in this stack needs more than this many
# transport bytes.
MAX_PUMP_BYTES = 16 * 1024 * 1024


class SessionEnded(ConnectionError):
    """The peer ended the session cleanly (close_notify or orderly EOF).

    Subclasses :class:`ConnectionError` so existing ``except
    ConnectionError`` handlers keep working, while letting callers that
    care distinguish a clean end from a torn connection.
    """


def tune_socket(sock: socket.socket) -> None:
    """Apply the transport options every socket in this stack wants.

    ``TCP_NODELAY`` because the sans-I/O cores already emit whole flights
    (Nagle only adds latency between our record-sized writes);
    ``SO_REUSEADDR`` so benchmark/test servers can rebind a
    just-released port instead of tripping over TIME_WAIT.
    """
    try:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    except (OSError, AttributeError):  # pragma: no cover - non-TCP sockets
        pass
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    except (OSError, AttributeError):  # pragma: no cover
        pass


class SocketConnection:
    """Drives a sans-I/O endpoint connection over a blocking socket."""

    def __init__(self, connection, sock: socket.socket):
        self.connection = connection
        self.sock = sock
        tune_socket(sock)
        self.events: List[object] = []
        self.bytes_in = 0
        self.bytes_out = 0

    def flush(self) -> None:
        data = self.connection.data_to_send()
        if data:
            self.bytes_out += len(data)
            self.sock.sendall(data)

    def _on_eof(self) -> None:
        """The peer half-closed.  After the handshake this is how plain
        TCP peers signal "done" (many don't bother with close_notify);
        mid-handshake it can only be a failure."""
        if self.connection.handshake_complete or getattr(
            self.connection, "closed", False
        ):
            raise SessionEnded("peer ended the session")
        raise ConnectionError("peer closed the connection mid-handshake")

    def pump_until(
        self,
        predicate: Callable[[], bool],
        timeout: float = 30.0,
        max_bytes: int = MAX_PUMP_BYTES,
    ) -> None:
        """Receive and process until ``predicate()`` holds.

        Bounded two ways: ``timeout`` on each receive, and ``max_bytes``
        of total transport input — a peer streaming garbage forever
        (fault mutators do) gets a ``ConnectionError``, not an unbounded
        loop.
        """
        self.sock.settimeout(timeout)
        self.flush()
        consumed = 0
        while not predicate():
            data = self.sock.recv(RECV_SIZE)
            if not data:
                self._on_eof()
            consumed += len(data)
            self.bytes_in += len(data)
            if consumed > max_bytes:
                raise ConnectionError(
                    f"pump_until consumed {consumed} bytes without progress "
                    f"(bound: {max_bytes})"
                )
            self.events.extend(self.connection.receive_bytes(data))
            self.flush()

    def handshake(self, timeout: float = 30.0) -> None:
        if hasattr(self.connection, "start_handshake"):
            if not self.connection.handshake_complete:
                try:
                    self.connection.start_handshake()
                except Exception:
                    pass  # server side: passive
        self.pump_until(lambda: self.connection.handshake_complete, timeout)

    def send(self, data: bytes, context_id: Optional[int] = None) -> None:
        if context_id is None:
            self.connection.send_application_data(data)
        else:
            self.connection.send_application_data(data, context_id=context_id)
        self.flush()

    def recv_app_data(self, timeout: float = 30.0):
        """Block until the next application-data event arrives."""

        def have_data():
            return any(hasattr(e, "data") for e in self.events)

        self.pump_until(have_data, timeout)
        for i, event in enumerate(self.events):
            if hasattr(event, "data"):
                return self.events.pop(i)
        raise RuntimeError("unreachable")  # pragma: no cover

    def close(self) -> None:
        try:
            self.connection.close()
            self.flush()
        finally:
            self.sock.close()


class RelayServer:
    """Accepts downstream connections and relays them upstream through a
    two-sided relay object (one relay instance per connection)."""

    def __init__(
        self,
        listen_addr: Tuple[str, int],
        upstream_addr: Tuple[str, int],
        relay_factory: Callable[[], object],
    ):
        self.listen_addr = listen_addr
        self.upstream_addr = upstream_addr
        self.relay_factory = relay_factory
        self._listener: Optional[socket.socket] = None
        self._threads: List[threading.Thread] = []
        self._stopping = threading.Event()

    @property
    def port(self) -> int:
        return self._listener.getsockname()[1]

    def start(self) -> "RelayServer":
        self._listener = socket.create_server(self.listen_addr)
        tune_socket(self._listener)
        self._listener.settimeout(0.2)
        thread = threading.Thread(target=self._accept_loop, daemon=True)
        thread.start()
        self._threads.append(thread)
        return self

    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                downstream, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            thread = threading.Thread(
                target=self._handle, args=(downstream,), daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def _handle(self, downstream: socket.socket) -> None:
        relay = self.relay_factory()
        try:
            upstream = socket.create_connection(self.upstream_addr, timeout=10)
        except OSError:
            downstream.close()
            return
        for sock in (downstream, upstream):
            tune_socket(sock)
            sock.settimeout(0.1)

        def flush() -> None:
            to_server = relay.data_to_server()
            if to_server:
                upstream.sendall(to_server)
            to_client = relay.data_to_client()
            if to_client:
                downstream.sendall(to_client)

        # Track EOF per direction: one side half-closing must not stop
        # the relay from draining the other (a server can keep streaming
        # a response after the client shuts down its write side).
        open_sides = {id(downstream): True, id(upstream): True}
        try:
            while not self._stopping.is_set() and any(open_sides.values()):
                moved = False
                for sock, feed in (
                    (downstream, relay.receive_from_client),
                    (upstream, relay.receive_from_server),
                ):
                    if not open_sides[id(sock)]:
                        continue
                    try:
                        data = sock.recv(RECV_SIZE)
                    except socket.timeout:
                        continue
                    except OSError:
                        return
                    if not data:
                        open_sides[id(sock)] = False
                        continue
                    moved = True
                    try:
                        feed(data)
                    except Exception:
                        # Garbage from one peer (or a fault mutator)
                        # kills this relay session, never the server.
                        return
                    flush()
                if not moved:
                    flush()
        finally:
            downstream.close()
            upstream.close()

    def stop(self) -> None:
        self._stopping.set()
        if self._listener is not None:
            self._listener.close()


class EndpointServer:
    """Accepts connections and runs a fresh sans-I/O server connection
    plus a user handler for each.

    When ``session_cache`` is given, ``connection_factory`` is called
    with it as its single argument (instead of zero arguments) so every
    per-connection protocol object shares the one server-side
    :class:`repro.tls.sessioncache.SessionCache` — the deployment shape
    for resumption over real sockets.
    """

    def __init__(
        self,
        listen_addr: Tuple[str, int],
        connection_factory: Callable[..., object],
        handler: Callable[[SocketConnection], None],
        session_cache: Optional[object] = None,
    ):
        self.listen_addr = listen_addr
        self.connection_factory = connection_factory
        self.handler = handler
        self.session_cache = session_cache
        self._listener: Optional[socket.socket] = None
        self._stopping = threading.Event()

    @property
    def port(self) -> int:
        return self._listener.getsockname()[1]

    def _make_connection(self) -> object:
        if self.session_cache is not None:
            return self.connection_factory(self.session_cache)
        return self.connection_factory()

    def start(self) -> "EndpointServer":
        self._listener = socket.create_server(self.listen_addr)
        tune_socket(self._listener)
        self._listener.settimeout(0.2)
        threading.Thread(target=self._accept_loop, daemon=True).start()
        return self

    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                sock, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            threading.Thread(
                target=self._handle, args=(sock,), daemon=True
            ).start()

    def _handle(self, sock: socket.socket) -> None:
        wrapper = SocketConnection(self._make_connection(), sock)
        try:
            self.handler(wrapper)
        except (ConnectionError, OSError):
            pass
        except Exception:
            # A protocol error from a misbehaving peer (TLSError,
            # DecodeError, ...) ends this connection only.
            pass
        finally:
            sock.close()

    def stop(self) -> None:
        self._stopping.set()
        if self._listener is not None:
            self._listener.close()


def connect(addr: Tuple[str, int], connection, timeout: float = 10.0) -> SocketConnection:
    """Dial ``addr`` and wrap ``connection`` over the socket."""
    sock = socket.create_connection(addr, timeout=timeout)
    return SocketConnection(connection, sock)
