"""The TLS 1.2 pseudorandom function (RFC 5246 §5) with SHA-256.

``PRF(secret, label, seed)`` = P_SHA256(secret, label || seed), the
HMAC-based data-expansion function.  mcTLS keys everything — master
secrets, connection keys, partial context keys and final context keys —
through this PRF, exactly as TLS 1.2 does.
"""

from __future__ import annotations

from repro.crypto.hmaccache import CachedHmacSha256
from repro.crypto.opcount import count_op


def p_sha256(secret: bytes, seed: bytes, length: int) -> bytes:
    """The P_hash data-expansion function with SHA-256 (RFC 5246 §5).

    One cached HMAC context per call: the key schedule for ``secret`` is
    derived once and cloned per digest instead of re-deriving it for
    every A(i) / output-block pair (identical bytes to ``hmac.new``).
    """
    ctx = CachedHmacSha256(secret)
    output = bytearray()
    a = seed
    while len(output) < length:
        a = ctx.digest(a)
        output += ctx.digest(a, seed)
    return bytes(output[:length])


def prf(secret: bytes, label: bytes, seed: bytes, length: int) -> bytes:
    """TLS 1.2 PRF.  Counted as one logical ``hash`` operation (Table 3)."""
    count_op("hash")
    return p_sha256(secret, label + seed, length)


def prf_key_block(secret: bytes, label: bytes, seed: bytes, length: int) -> bytes:
    """PRF invocation that derives key material (counted as ``key_gen``)."""
    count_op("key_gen")
    return p_sha256(secret, label + seed, length)
