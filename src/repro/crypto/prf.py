"""The TLS 1.2 pseudorandom function (RFC 5246 §5) with SHA-256.

``PRF(secret, label, seed)`` = P_SHA256(secret, label || seed), the
HMAC-based data-expansion function.  mcTLS keys everything — master
secrets, connection keys, partial context keys and final context keys —
through this PRF, exactly as TLS 1.2 does.
"""

from __future__ import annotations

import hashlib
import hmac

from repro.crypto.opcount import count_op


def p_sha256(secret: bytes, seed: bytes, length: int) -> bytes:
    """The P_hash data-expansion function with SHA-256 (RFC 5246 §5)."""
    output = bytearray()
    a = seed
    while len(output) < length:
        a = hmac.new(secret, a, hashlib.sha256).digest()
        output += hmac.new(secret, a + seed, hashlib.sha256).digest()
    return bytes(output[:length])


def prf(secret: bytes, label: bytes, seed: bytes, length: int) -> bytes:
    """TLS 1.2 PRF.  Counted as one logical ``hash`` operation (Table 3)."""
    count_op("hash")
    return p_sha256(secret, label + seed, length)


def prf_key_block(secret: bytes, label: bytes, seed: bytes, length: int) -> bytes:
    """PRF invocation that derives key material (counted as ``key_gen``)."""
    count_op("key_gen")
    return p_sha256(secret, label + seed, length)
