"""Block cipher modes of operation: CBC (with PKCS#7 padding) and CTR."""

from __future__ import annotations

from repro.crypto.aes import AES


class PaddingError(Exception):
    """Raised when CBC padding is malformed on decryption."""


def pkcs7_pad(data: bytes, block_size: int = 16) -> bytes:
    """Apply PKCS#7 padding (always adds at least one byte)."""
    pad_len = block_size - (len(data) % block_size)
    return data + bytes([pad_len]) * pad_len


def pkcs7_unpad(data: bytes, block_size: int = 16) -> bytes:
    """Strip and validate PKCS#7 padding."""
    if not data or len(data) % block_size:
        raise PaddingError("padded data length is not a multiple of block size")
    pad_len = data[-1]
    if pad_len < 1 or pad_len > block_size:
        raise PaddingError("invalid padding length byte")
    if data[-pad_len:] != bytes([pad_len]) * pad_len:
        raise PaddingError("padding bytes are inconsistent")
    return data[:-pad_len]


def cbc_encrypt(cipher: AES, iv: bytes, plaintext: bytes) -> bytes:
    """CBC-encrypt ``plaintext`` (must already be block-aligned)."""
    if len(iv) != cipher.block_size:
        raise ValueError("IV must be one block long")
    if len(plaintext) % cipher.block_size:
        raise ValueError("CBC plaintext must be block-aligned (pad first)")
    out = bytearray()
    previous = iv
    for i in range(0, len(plaintext), cipher.block_size):
        block = bytes(
            a ^ b for a, b in zip(plaintext[i : i + cipher.block_size], previous)
        )
        encrypted = cipher.encrypt_block(block)
        out += encrypted
        previous = encrypted
    return bytes(out)


def cbc_decrypt(cipher: AES, iv: bytes, ciphertext: bytes) -> bytes:
    """CBC-decrypt ``ciphertext`` (padding is NOT removed)."""
    if len(iv) != cipher.block_size:
        raise ValueError("IV must be one block long")
    if len(ciphertext) % cipher.block_size:
        raise ValueError("CBC ciphertext must be block-aligned")
    out = bytearray()
    previous = iv
    for i in range(0, len(ciphertext), cipher.block_size):
        block = ciphertext[i : i + cipher.block_size]
        decrypted = cipher.decrypt_block(block)
        out += bytes(a ^ b for a, b in zip(decrypted, previous))
        previous = block
    return bytes(out)


def ctr_keystream(cipher: AES, nonce: bytes, length: int) -> bytes:
    """Generate ``length`` bytes of CTR keystream from a 16-byte nonce."""
    if len(nonce) != cipher.block_size:
        raise ValueError("CTR nonce must be one block long")
    counter = int.from_bytes(nonce, "big")
    blocks = bytearray()
    for _ in range((length + 15) // 16):
        blocks += cipher.encrypt_block(counter.to_bytes(16, "big"))
        counter = (counter + 1) % (1 << 128)
    return bytes(blocks[:length])


def ctr_xor(cipher: AES, nonce: bytes, data: bytes) -> bytes:
    """CTR encryption/decryption (the operation is its own inverse)."""
    stream = ctr_keystream(cipher, nonce, len(data))
    return _xor_bytes(data, stream)


def _xor_bytes(a: bytes, b: bytes) -> bytes:
    """XOR two equal-length byte strings via big-int arithmetic (fast)."""
    if len(a) != len(b):
        raise ValueError("XOR operands must have equal length")
    n = int.from_bytes(a, "big") ^ int.from_bytes(b, "big")
    return n.to_bytes(len(a), "big")
