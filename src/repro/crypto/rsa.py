"""RSA from scratch: key generation, PKCS#1 v1.5 signing and encryption.

The paper's prototype uses RSA certificates for entity authentication
(DHE-RSA cipher suite) and — in the authors' implementation shortcut — RSA
public-key encryption for the ``MiddleboxKeyMaterial`` messages.  We
implement both uses.

Signatures and encryption follow PKCS#1 v1.5 (RFC 8017 §8.2 / §7.2) with
SHA-256 as the digest for signatures.  Private-key operations use the CRT
optimisation.
"""

from __future__ import annotations

import hashlib
import secrets
from dataclasses import dataclass

from repro.crypto.numtheory import (
    bytes_to_int,
    generate_prime,
    int_to_bytes,
    modinv,
)
from repro.crypto.opcount import count_op

# DER prefix for a SHA-256 DigestInfo (RFC 8017 §9.2 note 1).
_SHA256_DIGESTINFO = bytes.fromhex("3031300d060960864801650304020105000420")

_DEFAULT_PUBLIC_EXPONENT = 65537


class RSAError(Exception):
    """Raised on any RSA padding/verification/size failure."""


@dataclass(frozen=True)
class RSAPublicKey:
    n: int
    e: int

    @property
    def byte_length(self) -> int:
        return (self.n.bit_length() + 7) // 8

    # -- signatures --------------------------------------------------

    def verify(self, message: bytes, signature: bytes) -> bool:
        """Verify a PKCS#1 v1.5 SHA-256 signature; returns True/False."""
        count_op("asym_verify")
        k = self.byte_length
        if len(signature) != k:
            return False
        em = int_to_bytes(pow(bytes_to_int(signature), self.e, self.n), k)
        return em == _pkcs1_sign_encode(message, k)

    # -- encryption ---------------------------------------------------

    def encrypt(self, plaintext: bytes) -> bytes:
        """PKCS#1 v1.5 encryption (type 2 padding)."""
        k = self.byte_length
        if len(plaintext) > k - 11:
            raise RSAError("plaintext too long for RSA modulus")
        padding_len = k - 3 - len(plaintext)
        padding = bytearray()
        while len(padding) < padding_len:
            byte = secrets.token_bytes(1)
            if byte != b"\x00":
                padding += byte
        em = b"\x00\x02" + bytes(padding) + b"\x00" + plaintext
        return int_to_bytes(pow(bytes_to_int(em), self.e, self.n), k)

    # -- serialization ------------------------------------------------

    def to_bytes(self) -> bytes:
        n_bytes = int_to_bytes(self.n)
        e_bytes = int_to_bytes(self.e)
        return (
            len(n_bytes).to_bytes(2, "big")
            + n_bytes
            + len(e_bytes).to_bytes(2, "big")
            + e_bytes
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "RSAPublicKey":
        if len(data) < 4:
            raise RSAError("truncated RSA public key")
        n_len = int.from_bytes(data[:2], "big")
        n = bytes_to_int(data[2 : 2 + n_len])
        offset = 2 + n_len
        e_len = int.from_bytes(data[offset : offset + 2], "big")
        e = bytes_to_int(data[offset + 2 : offset + 2 + e_len])
        if offset + 2 + e_len != len(data):
            raise RSAError("trailing bytes after RSA public key")
        return cls(n=n, e=e)


@dataclass(frozen=True)
class RSAPrivateKey:
    n: int
    e: int
    d: int
    p: int
    q: int
    # CRT precomputation
    dp: int
    dq: int
    qinv: int

    @property
    def public_key(self) -> RSAPublicKey:
        return RSAPublicKey(n=self.n, e=self.e)

    @property
    def byte_length(self) -> int:
        return (self.n.bit_length() + 7) // 8

    def _private_op(self, c: int) -> int:
        """RSA private-key exponentiation using the CRT."""
        m1 = pow(c % self.p, self.dp, self.p)
        m2 = pow(c % self.q, self.dq, self.q)
        h = (self.qinv * (m1 - m2)) % self.p
        return m2 + h * self.q

    # -- signatures ---------------------------------------------------

    def sign(self, message: bytes) -> bytes:
        """Produce a PKCS#1 v1.5 SHA-256 signature."""
        count_op("asym_sign")
        k = self.byte_length
        em = _pkcs1_sign_encode(message, k)
        return int_to_bytes(self._private_op(bytes_to_int(em)), k)

    # -- encryption ---------------------------------------------------

    def decrypt(self, ciphertext: bytes) -> bytes:
        """PKCS#1 v1.5 decryption; raises :class:`RSAError` on bad padding."""
        count_op("secret_comp")
        k = self.byte_length
        if len(ciphertext) != k:
            raise RSAError("ciphertext length does not match modulus")
        em = int_to_bytes(self._private_op(bytes_to_int(ciphertext)), k)
        if em[:2] != b"\x00\x02":
            raise RSAError("invalid PKCS#1 v1.5 padding")
        try:
            separator = em.index(b"\x00", 2)
        except ValueError:
            raise RSAError("missing PKCS#1 v1.5 separator") from None
        if separator < 10:
            raise RSAError("PKCS#1 v1.5 padding too short")
        return em[separator + 1 :]


def _pkcs1_sign_encode(message: bytes, k: int) -> bytes:
    """EMSA-PKCS1-v1_5 encoding of a SHA-256 digest."""
    digest = hashlib.sha256(message).digest()
    t = _SHA256_DIGESTINFO + digest
    if k < len(t) + 11:
        raise RSAError("RSA modulus too small for SHA-256 signature")
    ps = b"\xff" * (k - len(t) - 3)
    return b"\x00\x01" + ps + b"\x00" + t


def generate_rsa_key(bits: int = 2048, e: int = _DEFAULT_PUBLIC_EXPONENT) -> RSAPrivateKey:
    """Generate an RSA key pair with an n of exactly ``bits`` bits."""
    if bits < 512:
        raise ValueError("RSA keys below 512 bits are not supported")
    while True:
        p = generate_prime(bits // 2)
        q = generate_prime(bits - bits // 2)
        if p == q:
            continue
        n = p * q
        if n.bit_length() != bits:
            continue
        phi = (p - 1) * (q - 1)
        try:
            d = modinv(e, phi)
        except ValueError:
            continue  # e not coprime with phi; repick primes
        if p < q:
            p, q = q, p
        return RSAPrivateKey(
            n=n,
            e=e,
            d=d,
            p=p,
            q=q,
            dp=d % (p - 1),
            dq=d % (q - 1),
            qinv=modinv(q, p),
        )
