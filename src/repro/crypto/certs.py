"""A minimal X.509-like certificate infrastructure.

Real TLS uses ASN.1/DER X.509; nothing in the mcTLS design depends on the
encoding details, so we use a compact length-prefixed format carrying the
fields that matter to the protocol: subject name, issuer name, RSA public
key, serial number, CA flag, and an RSA PKCS#1 v1.5 signature by the
issuer over the to-be-signed bytes.

Chain building and verification mirror what browsers do for TLS: walk from
the leaf to a trusted self-signed root, checking each signature and that
intermediates carry the CA flag, then check that the leaf's subject matches
the expected name.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from repro.crypto.opcount import count_op
from repro.crypto.rsa import RSAPrivateKey, RSAPublicKey, generate_rsa_key


class CertificateError(Exception):
    """Raised when certificate parsing or chain validation fails."""


def _pack_bytes(data: bytes) -> bytes:
    if len(data) > 0xFFFF:
        raise CertificateError("certificate field too long")
    return len(data).to_bytes(2, "big") + data


class _Reader:
    """Sequential reader for the length-prefixed certificate encoding."""

    def __init__(self, data: bytes):
        self._data = data
        self._offset = 0

    def take(self, n: int) -> bytes:
        if self._offset + n > len(self._data):
            raise CertificateError("truncated certificate")
        chunk = self._data[self._offset : self._offset + n]
        self._offset += n
        return chunk

    def take_field(self) -> bytes:
        n = int.from_bytes(self.take(2), "big")
        return self.take(n)

    @property
    def exhausted(self) -> bool:
        return self._offset == len(self._data)


@dataclass(frozen=True)
class Certificate:
    """A signed binding between a subject name and an RSA public key."""

    subject: str
    issuer: str
    public_key: RSAPublicKey
    serial: int
    is_ca: bool
    signature: bytes

    def tbs_bytes(self) -> bytes:
        """The to-be-signed encoding (everything except the signature)."""
        return (
            _pack_bytes(self.subject.encode("utf-8"))
            + _pack_bytes(self.issuer.encode("utf-8"))
            + _pack_bytes(self.public_key.to_bytes())
            + self.serial.to_bytes(8, "big")
            + (b"\x01" if self.is_ca else b"\x00")
        )

    def to_bytes(self) -> bytes:
        return self.tbs_bytes() + _pack_bytes(self.signature)

    @classmethod
    def from_bytes(cls, data: bytes) -> "Certificate":
        reader = _Reader(data)
        subject = reader.take_field().decode("utf-8")
        issuer = reader.take_field().decode("utf-8")
        public_key = RSAPublicKey.from_bytes(reader.take_field())
        serial = int.from_bytes(reader.take(8), "big")
        is_ca = reader.take(1) == b"\x01"
        signature = reader.take_field()
        if not reader.exhausted:
            raise CertificateError("trailing bytes after certificate")
        return cls(
            subject=subject,
            issuer=issuer,
            public_key=public_key,
            serial=serial,
            is_ca=is_ca,
            signature=signature,
        )

    @property
    def is_self_signed(self) -> bool:
        return self.subject == self.issuer

    def verify_signature(self, issuer_key: RSAPublicKey) -> bool:
        return issuer_key.verify(self.tbs_bytes(), self.signature)


@dataclass
class CertificateAuthority:
    """A certificate issuer with its own (possibly self-signed) certificate."""

    name: str
    key: RSAPrivateKey
    certificate: Certificate

    @classmethod
    def create_root(cls, name: str, key_bits: int = 2048) -> "CertificateAuthority":
        """Create a self-signed root CA."""
        key = generate_rsa_key(key_bits)
        tbs = Certificate(
            subject=name,
            issuer=name,
            public_key=key.public_key,
            serial=secrets.randbits(63),
            is_ca=True,
            signature=b"",
        )
        signed = Certificate(
            subject=tbs.subject,
            issuer=tbs.issuer,
            public_key=tbs.public_key,
            serial=tbs.serial,
            is_ca=tbs.is_ca,
            signature=key.sign(tbs.tbs_bytes()),
        )
        return cls(name=name, key=key, certificate=signed)

    def issue(
        self,
        subject: str,
        public_key: RSAPublicKey,
        is_ca: bool = False,
    ) -> Certificate:
        """Issue a certificate for ``subject`` binding ``public_key``."""
        tbs = Certificate(
            subject=subject,
            issuer=self.name,
            public_key=public_key,
            serial=secrets.randbits(63),
            is_ca=is_ca,
            signature=b"",
        )
        return Certificate(
            subject=tbs.subject,
            issuer=tbs.issuer,
            public_key=tbs.public_key,
            serial=tbs.serial,
            is_ca=tbs.is_ca,
            signature=self.key.sign(tbs.tbs_bytes()),
        )

    def issue_intermediate(self, name: str, key_bits: int = 2048) -> "CertificateAuthority":
        """Create a subordinate CA whose certificate this CA signs."""
        key = generate_rsa_key(key_bits)
        cert = self.issue(name, key.public_key, is_ca=True)
        return CertificateAuthority(name=name, key=key, certificate=cert)


@dataclass(frozen=True)
class Identity:
    """A certified endpoint or middlebox: key pair + certificate chain.

    ``chain`` is ordered leaf-first and excludes the trusted root.
    """

    name: str
    key: RSAPrivateKey
    chain: Sequence[Certificate]

    @property
    def certificate(self) -> Certificate:
        return self.chain[0]

    @classmethod
    def issued_by(
        cls, ca: CertificateAuthority, name: str, key_bits: int = 2048
    ) -> "Identity":
        key = generate_rsa_key(key_bits)
        cert = ca.issue(name, key.public_key)
        chain: List[Certificate] = [cert]
        if not ca.certificate.is_self_signed:
            chain.append(ca.certificate)
        return cls(name=name, key=key, chain=tuple(chain))


def verify_chain(
    chain: Sequence[Certificate],
    trusted_roots: Iterable[Certificate],
    expected_subject: Optional[str] = None,
) -> Certificate:
    """Validate a leaf-first certificate chain against trusted roots.

    Returns the leaf certificate on success; raises
    :class:`CertificateError` on any failure.  Counted as one
    ``asym_verify`` per signature checked (inside :meth:`RSAPublicKey.verify`).
    """
    if not chain:
        raise CertificateError("empty certificate chain")
    roots = {(c.subject, c.public_key.n): c for c in trusted_roots}
    leaf = chain[0]
    if expected_subject is not None and leaf.subject != expected_subject:
        raise CertificateError(
            f"subject mismatch: expected {expected_subject!r}, got {leaf.subject!r}"
        )

    current = leaf
    for issuer_cert in list(chain[1:]) + [None]:
        # Is the current certificate's issuer a trusted root?
        root = next(
            (r for (subj, _n), r in roots.items() if subj == current.issuer), None
        )
        if root is not None:
            if not current.verify_signature(root.public_key):
                raise CertificateError("signature by trusted root does not verify")
            return leaf
        if issuer_cert is None:
            raise CertificateError("chain does not terminate at a trusted root")
        if issuer_cert.subject != current.issuer:
            raise CertificateError("chain is out of order")
        if not issuer_cert.is_ca:
            raise CertificateError("intermediate certificate is not a CA")
        if not current.verify_signature(issuer_cert.public_key):
            raise CertificateError("intermediate signature does not verify")
        current = issuer_cert
    raise CertificateError("chain does not terminate at a trusted root")


def count_certificate_verify() -> None:
    """Explicitly record a certificate verification (used by protocol code
    when it verifies a cached/pinned certificate without a full chain walk)."""
    count_op("asym_verify")
