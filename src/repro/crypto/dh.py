"""Finite-field ephemeral Diffie-Hellman.

mcTLS uses ephemeral DH key pairs for all pairwise key establishment
(client-server, client-middlebox, server-middlebox).  A middlebox generates
*two* key pairs — one towards the client and one towards the server — to
avoid small-subgroup attacks, exactly as the paper specifies.

The default group is the 2048-bit MODP group from RFC 3526.  A small
512-bit safe-prime group is provided for fast unit tests.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass

from repro.crypto.numtheory import bytes_to_int, int_to_bytes
from repro.crypto.opcount import count_op


class DHError(Exception):
    """Raised on invalid Diffie-Hellman public values."""


@dataclass(frozen=True)
class DHGroup:
    """A finite-field DH group (prime modulus ``p``, generator ``g``)."""

    name: str
    p: int
    g: int

    @property
    def byte_length(self) -> int:
        return (self.p.bit_length() + 7) // 8

    def generate_keypair(self) -> "DHKeyPair":
        """Generate an ephemeral key pair in this group."""
        # Private exponents of 2 * security-level bits are standard; cap
        # at the group size.
        exponent_bits = min(max(256, self.p.bit_length() // 8), self.p.bit_length() - 2)
        private = secrets.randbits(exponent_bits) | (1 << (exponent_bits - 1))
        public = pow(self.g, private, self.p)
        return DHKeyPair(group=self, private=private, public=public)

    def validate_public(self, public: int) -> None:
        """Reject degenerate public values (1, 0, p-1, out of range)."""
        if not 2 <= public <= self.p - 2:
            raise DHError("DH public value out of range")

    def public_to_bytes(self, public: int) -> bytes:
        return int_to_bytes(public, self.byte_length)

    def public_from_bytes(self, data: bytes) -> int:
        if len(data) != self.byte_length:
            raise DHError("DH public value has wrong length for group")
        public = bytes_to_int(data)
        self.validate_public(public)
        return public


@dataclass(frozen=True)
class DHKeyPair:
    """An ephemeral DH key pair bound to its group."""

    group: DHGroup
    private: int
    public: int

    @property
    def public_bytes(self) -> bytes:
        return self.group.public_to_bytes(self.public)

    def combine(self, peer_public: int) -> bytes:
        """Compute the shared secret with a peer's public value.

        This is ``DHCombine`` from the paper's notation.  Counted as one
        ``secret_comp`` operation (Table 3).
        """
        self.group.validate_public(peer_public)
        count_op("secret_comp")
        shared = pow(peer_public, self.private, self.group.p)
        return int_to_bytes(shared, self.group.byte_length)

    def combine_bytes(self, peer_public_bytes: bytes) -> bytes:
        return self.combine(self.group.public_from_bytes(peer_public_bytes))


# RFC 3526, group 14 (2048-bit MODP).
_MODP_2048_P = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05"
    "98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB"
    "9ED529077096966D670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B"
    "E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9DE2BCBF695581718"
    "3995497CEA956AE515D2261898FA051015728E5A8AACAA68FFFFFFFFFFFFFFFF",
    16,
)

GROUP_MODP_2048 = DHGroup(name="modp2048", p=_MODP_2048_P, g=2)

# 1024-bit MODP group (RFC 2409 group 2) — used by benchmarks to keep
# pure-Python handshakes fast while remaining a real standardised group.
_MODP_1024_P = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE65381FFFFFFFFFFFFFFFF",
    16,
)

GROUP_MODP_1024 = DHGroup(name="modp1024", p=_MODP_1024_P, g=2)

# A fixed 512-bit safe prime for unit tests (generated once offline with
# generate_safe_prime(512); safe primality is asserted by the test suite).
_TEST_512_P = int(
    "A4AEBCA7AB7418975AC13EF7A2959675CDAC0C6306F667CDF22E2AC07F4CFAE9"
    "D12BF56702B854C9B3E344399FB7F13F12CEFA46563E6767E6D0C8DF2E033A67",
    16,
)

GROUP_TEST_512 = DHGroup(name="test512", p=_TEST_512_P, g=2)

GROUPS = {
    g.name: g for g in (GROUP_MODP_2048, GROUP_MODP_1024, GROUP_TEST_512)
}
