"""Per-key cached HMAC-SHA256.

``hmac.new(key, data, sha256)`` pays for two context constructions and
two key-pad compressions on every call.  On the record data plane the
*keys* are stable for the lifetime of a connection while the *data*
changes per record, so the inner/outer pads can be absorbed into two
SHA-256 contexts exactly once per key and ``.copy()``-ed per record —
RFC 2104's precomputation trick.  Measured on the 1.4 KB record MAC
input this is ~1.6x faster than ``hmac.new``; output bytes are
identical (pinned by the golden-vector tests).

:class:`CachedHmacSha256` is the per-key object (record layers hold one
per MAC slot); :func:`hmac_sha256` is a drop-in functional form backed
by a bounded module-level cache for call sites without a natural place
to keep state.
"""

from __future__ import annotations

import hashlib

_BLOCK_SIZE = 64  # SHA-256 compression block
_IPAD_TRANS = bytes(b ^ 0x36 for b in range(256))
_OPAD_TRANS = bytes(b ^ 0x5C for b in range(256))

DIGEST_SIZE = 32


class CachedHmacSha256:
    """HMAC-SHA256 with the key schedule precomputed once.

    ``digest(*parts)`` MACs the concatenation of ``parts`` without
    actually concatenating them — callers pass (header, payload) and
    skip the per-record ``bytes`` join.  Parts may be any bytes-like
    object (``bytes``, ``bytearray``, ``memoryview``).
    """

    __slots__ = ("_inner", "_outer")

    def __init__(self, key: bytes) -> None:
        if len(key) > _BLOCK_SIZE:
            key = hashlib.sha256(key).digest()
        padded = key.ljust(_BLOCK_SIZE, b"\x00")
        self._inner = hashlib.sha256(padded.translate(_IPAD_TRANS))
        self._outer = hashlib.sha256(padded.translate(_OPAD_TRANS))

    def digest(self, *parts) -> bytes:
        inner = self._inner.copy()
        for part in parts:
            inner.update(part)
        outer = self._outer.copy()
        outer.update(inner.digest())
        return outer.digest()

    def digest2(self, header, body) -> bytes:
        """Fixed two-part :meth:`digest` without the varargs loop.

        The record data planes MAC exactly ``(prefix, payload)`` per
        record; shaving the argument-tuple iteration off that call is
        measurable at the per-record floor.  Same bytes as
        ``digest(header, body)``.
        """
        inner = self._inner.copy()
        inner.update(header)
        inner.update(body)
        outer = self._outer.copy()
        outer.update(inner.digest())
        return outer.digest()


# Keyed contexts for call sites that take (key, data) per call.  Keys on
# the record path are few (a handful per connection) and secret material
# already lives in process memory, so caching by key bytes is safe; the
# bound only guards against pathological key churn.
_MAX_CACHED_KEYS = 256
_contexts: dict = {}


def hmac_sha256(key: bytes, *parts) -> bytes:
    """Drop-in ``hmac.new(key, data, sha256).digest()`` with key caching."""
    ctx = _contexts.get(key)
    if ctx is None:
        if len(_contexts) >= _MAX_CACHED_KEYS:
            _contexts.clear()
        ctx = _contexts[key] = CachedHmacSha256(key)
    return ctx.digest(*parts)
