"""Cryptographic substrate for the mcTLS reproduction.

The core is implemented from scratch on top of the Python standard
library (``hashlib``/``hmac``/``os.urandom``): AES, block-cipher modes,
finite-field Diffie-Hellman, RSA with PKCS#1 v1.5, the TLS 1.2 PRF, a toy
certificate infrastructure, and an operation counter used to reproduce the
paper's Table 3.

Record-layer bulk primitives (keystream generators, HMAC contexts)
additionally route through a pluggable provider registry
(:mod:`repro.crypto.provider`): the pure-Python provider is always
available and remains the default, while the OpenSSL provider (backed
by the optional ``cryptography`` package) powers the fast record suites
when importable.  Providers never change wire bytes — only who computes
them.

These primitives exist to make the *protocol* reproduction self-contained;
they are not hardened against side channels and must not be used to protect
real traffic.
"""

from repro.crypto.aes import AES
from repro.crypto.dh import DHGroup, DHKeyPair, GROUP_MODP_2048, GROUP_TEST_512
from repro.crypto.fastcipher import ShaCtrCipher, clear_keystream_cache
from repro.crypto.hmaccache import CachedHmacSha256, hmac_sha256
from repro.crypto.opcount import OpCounter, current_counter, count_op, counting
from repro.crypto.prf import prf, p_sha256
from repro.crypto.provider import OPENSSL, PROVIDERS, PURE, get_provider
from repro.crypto.rsa import RSAPrivateKey, RSAPublicKey, generate_rsa_key

__all__ = [
    "AES",
    "CachedHmacSha256",
    "DHGroup",
    "DHKeyPair",
    "GROUP_MODP_2048",
    "GROUP_TEST_512",
    "OpCounter",
    "RSAPrivateKey",
    "RSAPublicKey",
    "ShaCtrCipher",
    "clear_keystream_cache",
    "count_op",
    "counting",
    "current_counter",
    "generate_rsa_key",
    "hmac_sha256",
    "p_sha256",
    "prf",
]
