"""Number-theoretic helpers for RSA and Diffie-Hellman.

Implements deterministic-enough probabilistic primality testing
(Miller-Rabin with fixed witnesses for small inputs plus random witnesses
for large inputs), prime generation, and modular inverse.
"""

from __future__ import annotations

import secrets

# Small primes used for fast trial division before Miller-Rabin.
_SMALL_PRIMES = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139, 149,
    151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199, 211, 223, 227, 229,
    233, 239, 241, 251, 257, 263, 269, 271, 277, 281, 283, 293, 307, 311, 313,
    317, 331, 337, 347, 349, 353, 359, 367, 373, 379, 383, 389, 397, 401, 409,
]

# Witnesses that make Miller-Rabin deterministic for n < 3.3 * 10**24.
_DETERMINISTIC_WITNESSES = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41]


def _miller_rabin_round(n: int, a: int, d: int, r: int) -> bool:
    """One Miller-Rabin round; True means "probably prime so far"."""
    x = pow(a, d, n)
    if x in (1, n - 1):
        return True
    for _ in range(r - 1):
        x = (x * x) % n
        if x == n - 1:
            return True
    return False


def is_probable_prime(n: int, rounds: int = 32) -> bool:
    """Miller-Rabin primality test.

    Deterministic for n < 3.3e24, probabilistic (``rounds`` random
    witnesses) above that.
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False

    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1

    if n < 3_317_044_064_679_887_385_961_981:
        witnesses = [a for a in _DETERMINISTIC_WITNESSES if a < n]
    else:
        witnesses = [secrets.randbelow(n - 3) + 2 for _ in range(rounds)]

    return all(_miller_rabin_round(n, a, d, r) for a in witnesses)


def generate_prime(bits: int) -> int:
    """Generate a random prime with exactly ``bits`` bits."""
    if bits < 8:
        raise ValueError("prime size too small")
    while True:
        candidate = secrets.randbits(bits)
        candidate |= (1 << (bits - 1)) | 1  # force top bit and oddness
        if is_probable_prime(candidate):
            return candidate


def generate_safe_prime(bits: int) -> int:
    """Generate a safe prime p (p = 2q + 1 with q prime).

    Only used for small test DH groups; standard groups are constants.
    """
    while True:
        q = generate_prime(bits - 1)
        p = 2 * q + 1
        if is_probable_prime(p):
            return p


def modinv(a: int, m: int) -> int:
    """Modular inverse of ``a`` modulo ``m`` (extended Euclid)."""
    g, x = _extended_gcd(a % m, m)
    if g != 1:
        raise ValueError("modular inverse does not exist")
    return x % m


def _extended_gcd(a: int, b: int) -> tuple:
    """Return (gcd, x) such that a*x ≡ gcd (mod b)."""
    old_r, r = a, b
    old_s, s = 1, 0
    while r:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_s, s = s, old_s - q * s
    return old_r, old_s


def int_to_bytes(n: int, length: int = 0) -> bytes:
    """Big-endian encoding of a non-negative integer.

    With ``length == 0`` the minimal number of bytes is used (at least 1).
    """
    if n < 0:
        raise ValueError("negative integers are not supported")
    if length == 0:
        length = max(1, (n.bit_length() + 7) // 8)
    return n.to_bytes(length, "big")


def bytes_to_int(data: bytes) -> int:
    return int.from_bytes(data, "big")
