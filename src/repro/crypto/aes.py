"""AES block cipher (FIPS 197), implemented from scratch.

Supports AES-128, AES-192 and AES-256 single-block encryption and
decryption.  The implementation favours clarity over speed (it is a table
driven pure-Python cipher); bulk-data simulation paths can use the fast
SHA-CTR suite in :mod:`repro.crypto.fastcipher` instead, which preserves
record geometry.
"""

from __future__ import annotations

# Forward S-box, generated from the AES specification (multiplicative
# inverse in GF(2^8) followed by the affine transform).


def _build_sbox() -> tuple:
    """Compute the AES S-box and inverse S-box from first principles."""

    def gf_mul(a: int, b: int) -> int:
        result = 0
        for _ in range(8):
            if b & 1:
                result ^= a
            high = a & 0x80
            a = (a << 1) & 0xFF
            if high:
                a ^= 0x1B
            b >>= 1
        return result

    # Multiplicative inverses via brute force (fine at import time).
    inverse = [0] * 256
    for x in range(1, 256):
        for y in range(1, 256):
            if gf_mul(x, y) == 1:
                inverse[x] = y
                break

    sbox = [0] * 256
    inv_sbox = [0] * 256
    for x in range(256):
        b = inverse[x]
        s = 0
        for i in range(8):
            bit = (
                (b >> i)
                ^ (b >> ((i + 4) % 8))
                ^ (b >> ((i + 5) % 8))
                ^ (b >> ((i + 6) % 8))
                ^ (b >> ((i + 7) % 8))
                ^ (0x63 >> i)
            ) & 1
            s |= bit << i
        sbox[x] = s
        inv_sbox[s] = x
    return tuple(sbox), tuple(inv_sbox)


_SBOX, _INV_SBOX = _build_sbox()


def _xtime(a: int) -> int:
    a <<= 1
    if a & 0x100:
        a = (a ^ 0x1B) & 0xFF
    return a


def _gmul(a: int, b: int) -> int:
    """GF(2^8) multiplication used by (Inv)MixColumns."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a = _xtime(a)
        b >>= 1
    return result


# Precomputed multiplication tables for the MixColumns constants.
_MUL2 = tuple(_gmul(x, 2) for x in range(256))
_MUL3 = tuple(_gmul(x, 3) for x in range(256))
_MUL9 = tuple(_gmul(x, 9) for x in range(256))
_MUL11 = tuple(_gmul(x, 11) for x in range(256))
_MUL13 = tuple(_gmul(x, 13) for x in range(256))
_MUL14 = tuple(_gmul(x, 14) for x in range(256))

_RCON = (0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36, 0x6C, 0xD8, 0xAB, 0x4D)


class AES:
    """AES block cipher for a fixed key.

    >>> cipher = AES(bytes(16))
    >>> cipher.encrypt_block(bytes(16)).hex()
    '66e94bd4ef8a2c3b884cfa59ca342b2e'
    """

    block_size = 16

    def __init__(self, key: bytes):
        if len(key) not in (16, 24, 32):
            raise ValueError("AES key must be 16, 24 or 32 bytes")
        self._rounds = {16: 10, 24: 12, 32: 14}[len(key)]
        self._round_keys = self._expand_key(key)

    def _expand_key(self, key: bytes) -> list:
        nk = len(key) // 4
        nr = self._rounds
        words = [list(key[4 * i : 4 * i + 4]) for i in range(nk)]
        for i in range(nk, 4 * (nr + 1)):
            temp = list(words[i - 1])
            if i % nk == 0:
                temp = temp[1:] + temp[:1]
                temp = [_SBOX[b] for b in temp]
                temp[0] ^= _RCON[i // nk - 1]
            elif nk > 6 and i % nk == 4:
                temp = [_SBOX[b] for b in temp]
            words.append([words[i - nk][j] ^ temp[j] for j in range(4)])
        # Flatten into one 16-byte round key per round.
        round_keys = []
        for r in range(nr + 1):
            rk = []
            for w in words[4 * r : 4 * r + 4]:
                rk.extend(w)
            round_keys.append(rk)
        return round_keys

    # State is a flat list of 16 bytes in column-major order, matching the
    # FIPS 197 layout: state[r + 4*c].

    def encrypt_block(self, block: bytes) -> bytes:
        if len(block) != 16:
            raise ValueError("AES block must be 16 bytes")
        rk = self._round_keys
        state = [block[i] ^ rk[0][i] for i in range(16)]
        for rnd in range(1, self._rounds):
            state = self._encrypt_round(state, rk[rnd])
        # Final round: no MixColumns.
        s = [_SBOX[b] for b in state]
        s = self._shift_rows(s)
        final = rk[self._rounds]
        return bytes(s[i] ^ final[i] for i in range(16))

    def decrypt_block(self, block: bytes) -> bytes:
        if len(block) != 16:
            raise ValueError("AES block must be 16 bytes")
        rk = self._round_keys
        state = [block[i] ^ rk[self._rounds][i] for i in range(16)]
        state = self._inv_shift_rows(state)
        state = [_INV_SBOX[b] for b in state]
        for rnd in range(self._rounds - 1, 0, -1):
            state = [state[i] ^ rk[rnd][i] for i in range(16)]
            state = self._inv_mix_columns(state)
            state = self._inv_shift_rows(state)
            state = [_INV_SBOX[b] for b in state]
        return bytes(state[i] ^ rk[0][i] for i in range(16))

    @staticmethod
    def _shift_rows(s: list) -> list:
        return [
            s[0], s[5], s[10], s[15],
            s[4], s[9], s[14], s[3],
            s[8], s[13], s[2], s[7],
            s[12], s[1], s[6], s[11],
        ]

    @staticmethod
    def _inv_shift_rows(s: list) -> list:
        return [
            s[0], s[13], s[10], s[7],
            s[4], s[1], s[14], s[11],
            s[8], s[5], s[2], s[15],
            s[12], s[9], s[6], s[3],
        ]

    @staticmethod
    def _encrypt_round(state: list, round_key: list) -> list:
        # SubBytes + ShiftRows + MixColumns fused per column.
        s = [_SBOX[b] for b in state]
        s = AES._shift_rows(s)
        out = [0] * 16
        for c in range(0, 16, 4):
            a0, a1, a2, a3 = s[c], s[c + 1], s[c + 2], s[c + 3]
            out[c] = _MUL2[a0] ^ _MUL3[a1] ^ a2 ^ a3
            out[c + 1] = a0 ^ _MUL2[a1] ^ _MUL3[a2] ^ a3
            out[c + 2] = a0 ^ a1 ^ _MUL2[a2] ^ _MUL3[a3]
            out[c + 3] = _MUL3[a0] ^ a1 ^ a2 ^ _MUL2[a3]
        return [out[i] ^ round_key[i] for i in range(16)]

    @staticmethod
    def _inv_mix_columns(state: list) -> list:
        out = [0] * 16
        for c in range(0, 16, 4):
            a0, a1, a2, a3 = state[c], state[c + 1], state[c + 2], state[c + 3]
            out[c] = _MUL14[a0] ^ _MUL11[a1] ^ _MUL13[a2] ^ _MUL9[a3]
            out[c + 1] = _MUL9[a0] ^ _MUL14[a1] ^ _MUL11[a2] ^ _MUL13[a3]
            out[c + 2] = _MUL13[a0] ^ _MUL9[a1] ^ _MUL14[a2] ^ _MUL11[a3]
            out[c + 3] = _MUL11[a0] ^ _MUL13[a1] ^ _MUL9[a2] ^ _MUL14[a3]
        return out
