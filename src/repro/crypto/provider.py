"""Pluggable crypto provider layer for the record data plane.

PR 7's batched data plane left the middlebox READ/WRITE cells pinned to
a per-record crypto floor: one HMAC verification plus one SHA-CTR
keystream's worth of SHA-256 blocks per record (~3 µs at 256 B), paid in
pure Python no matter how records are batched.  This module breaks that
floor by putting the three record primitives — keystream generation,
bulk XOR, record MAC — behind a small provider seam:

* :data:`PURE` — the existing zero-dependency implementation
  (``ShaCtrCipher`` keystreams, :class:`~repro.crypto.hmaccache.
  CachedHmacSha256` MACs).  Default; its wire bytes are pinned by the
  golden vectors and never change.
* :data:`OPENSSL` — backed by the ``cryptography`` package's OpenSSL
  bindings when importable: AES-128-CTR and ChaCha20 keystreams plus a
  ``cryptography.hazmat`` HMAC with cached cloned contexts.

The provider choice is **not** wire format: a suite's bytes are fully
determined by its keystream definition and HMAC-SHA256, both of which
are backend-independent for a given suite.  What the provider changes is
who computes them.

Why AES-CTR goes through a persistent ECB context
-------------------------------------------------

The naive route — one ``Cipher(AES, CTR(nonce))`` context per record —
costs ~28 µs per record in context setup alone, *slower* than the pure
SHA-CTR path it is meant to replace.  But CTR mode is just ECB over
counter blocks: keystream block ``i`` is ``AES-ECB(key, nonce + i)``
with the 16-byte nonce treated as a big-endian 128-bit counter.  So the
generator keeps ONE persistent ECB encryptor per key and feeds it
counter blocks; for a burst, the counter blocks of *all* records are
assembled with vectorized NumPy arithmetic and encrypted in a single
``update`` call (~0.5 µs per 256 B record, ~16x the SHA-CTR rate).
ChaCha20 has no such decomposition in ``cryptography``'s API (the
context binds the nonce), so it pays the per-record context price — it
is negotiable and correct, and documented as winning only on large
records.

Keystream pooling becomes provider-aware here: each generator measures
its own generation cost once and asks the shared
:class:`~repro.crypto.fastcipher.KeystreamPool` whether memoization is
worth it (:meth:`KeystreamPool.worthwhile`).  Fused batch generation is
always below the pool's hit cost, so batched OpenSSL paths regenerate
instead of pooling; the crossover is overridable for deterministic CI
via ``REPRO_KEYSTREAM_POOL=on|off|auto``.
"""

from __future__ import annotations

import hashlib
import os
import time
from typing import Dict, List, Optional, Sequence

from repro.crypto.fastcipher import KEYSTREAM_POOL, ShaCtrCipher
from repro.crypto.hmaccache import CachedHmacSha256

try:  # NumPy drives the fused counter-block assembly; scalar fallback below.
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the image
    _np = None

try:  # OpenSSL bindings; the provider gates itself when absent.
    from cryptography.hazmat.primitives import hashes as _hazmat_hashes
    from cryptography.hazmat.primitives import hmac as _hazmat_hmac
    from cryptography.hazmat.primitives.ciphers import (
        Cipher as _Cipher,
        algorithms as _algorithms,
        modes as _modes,
    )

    _CRYPTOGRAPHY_OK = True
except ImportError:  # pragma: no cover - cryptography ships with the image
    _CRYPTOGRAPHY_OK = False

_MASK64 = (1 << 64) - 1
_MASK128 = (1 << 128) - 1

# HMAC backend selection for the OpenSSL provider.  Both backends emit
# identical bytes (HMAC-SHA256 is HMAC-SHA256); ``auto`` picks the
# faster one measured at first use — on CPython the hashlib-based
# CachedHmacSha256 usually wins by ~10 % because hashlib is itself
# OpenSSL-backed with less Python wrapping.
_HMAC_BACKEND = os.environ.get("REPRO_HMAC_BACKEND", "auto")

# A zero buffer ChaCha20 encrypts to expose its raw keystream.
_ZEROS = bytes(1 << 12)


def _best_ns(fn, reps: int = 32, rounds: int = 3) -> float:
    """Best-of-``rounds`` mean ns per call — tiny, import-time-safe."""
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter_ns()
        for _ in range(reps):
            fn()
        elapsed = (time.perf_counter_ns() - start) / reps
        if elapsed < best:
            best = elapsed
    return best


class OpenSSLHmacSha256:
    """HMAC-SHA256 via ``cryptography.hazmat`` with a cached cloned context.

    The keyed context is built once per key and ``copy()``-ed per digest
    — the same RFC 2104 precomputation trick as
    :class:`~repro.crypto.hmaccache.CachedHmacSha256`, expressed through
    OpenSSL's HMAC instead of two hashlib contexts.  Output bytes are
    identical; only the backend differs.
    """

    __slots__ = ("_base",)

    def __init__(self, key: bytes) -> None:
        self._base = _hazmat_hmac.HMAC(bytes(key), _hazmat_hashes.SHA256())

    def digest(self, *parts) -> bytes:
        ctx = self._base.copy()
        for part in parts:
            ctx.update(part if type(part) is bytes else bytes(part))
        return ctx.finalize()

    def digest2(self, header, body) -> bytes:
        """Fixed two-part :meth:`digest` (same bytes, no varargs loop)."""
        ctx = self._base.copy()
        ctx.update(header if type(header) is bytes else bytes(header))
        ctx.update(body if type(body) is bytes else bytes(body))
        return ctx.finalize()


class KeystreamGenerator:
    """Per-key keystream source a :class:`StreamRecordCipher` draws from.

    ``keystream(nonce, length)`` returns at least ``length`` bytes
    (rounded up to whole cipher blocks); callers slice.  ``fused`` marks
    generators whose :meth:`keystream_batch` beats per-record calls by
    enough that batch paths should bypass the pool and regenerate.
    """

    block_size = 16
    fused = False
    _pool_tag = b""
    # Measured per-class generation cost of one 352 B keystream (the
    # 256 B-payload mcTLS record body), filled lazily by _decide_pooling.
    _gen_cost_ns: Optional[float] = None

    def __init__(self, key: bytes) -> None:
        self._key = bytes(key)
        self.pooled = self._decide_pooling()

    # -- subclass API ---------------------------------------------------

    def keystream(self, nonce: bytes, length: int) -> bytes:
        raise NotImplementedError

    def keystream_batch(self, nonces: Sequence[bytes], sizes: Sequence[int]) -> List:
        """Full-block keystreams for a burst; override to fuse."""
        return [self.keystream(n, s) for n, s in zip(nonces, sizes)]

    def keystream_concat(self, nonces: Sequence[bytes], sizes: Sequence[int]) -> bytes:
        """Exactly ``sizes[i]`` keystream bytes per record, concatenated.

        The packed form lets a burst XOR run once over the concatenated
        record bodies with no per-record stream slicing; bytes are
        identical to truncating each :meth:`stream_for` individually
        (pool accounting included — fused generators override with a
        pool-bypassing single call, exactly like :meth:`stream_batch`).
        """
        return b"".join(
            memoryview(self.stream_for(n, s))[:s] for n, s in zip(nonces, sizes)
        )

    def keystream_grid(self, nonces, count: int, size: int) -> bytes:
        """Packed keystream for ``count`` records of one ``size``.

        ``nonces`` is one packed buffer of ``count`` 16-byte nonces (the
        shape a uniform wire burst yields with a single strided copy).
        Same bytes as :meth:`keystream_concat` on the sliced-out nonce
        list.
        """
        view = memoryview(nonces)
        return b"".join(
            memoryview(self.stream_for(bytes(view[i * 16 : i * 16 + 16]), size))[:size]
            for i in range(count)
        )

    # -- pooled access --------------------------------------------------

    def _decide_pooling(self) -> bool:
        cls = type(self)
        if cls._gen_cost_ns is None:
            try:
                nonce = b"\x00" * 16
                cls._gen_cost_ns = _best_ns(lambda: self.keystream(nonce, 352))
            except Exception:  # pragma: no cover - defensive
                cls._gen_cost_ns = float("inf")
        return KEYSTREAM_POOL.worthwhile(cls._gen_cost_ns)

    def stream_for(self, nonce: bytes, size: int) -> bytes:
        """Full-block keystream, memoized through the shared pool when
        this generator's measured cost clears the pool's hit cost."""
        if type(nonce) is not bytes:
            nonce = bytes(nonce)
        nblocks = -(-size // self.block_size)
        if not self.pooled:
            return self.keystream(nonce, nblocks * self.block_size)
        pool = KEYSTREAM_POOL
        cache_key = (self._pool_tag, self._key, nonce, nblocks)
        stream = pool._streams.get(cache_key)
        if stream is None:
            pool.misses += 1
            stream = self.keystream(nonce, nblocks * self.block_size)
            if type(stream) is not bytes:
                stream = bytes(stream)
            pool.put(cache_key, stream, size)
        else:
            pool.hits += 1
        return stream

    def stream_batch(self, nonces: Sequence[bytes], sizes: Sequence[int]) -> List:
        """Burst keystreams.  Fused generators regenerate below the
        pool's hit cost, so this path never touches the pool."""
        return self.keystream_batch(
            [n if type(n) is bytes else bytes(n) for n in nonces], sizes
        )


class AesCtrKeystream(KeystreamGenerator):
    """AES-128-CTR keystream via one persistent OpenSSL ECB context.

    The 16-byte record nonce is the initial 128-bit big-endian counter
    block; block ``i`` of the keystream is ``AES-ECB(key, (nonce + i)
    mod 2^128)``.  Counter blocks for a whole burst are assembled with
    vectorized uint64 arithmetic (carry out of the low 64 bits falls
    back to exact scalar arithmetic) and encrypted in one ``update``.
    """

    block_size = 16
    fused = True
    _pool_tag = b"aes128-ctr"

    def __init__(self, key: bytes) -> None:
        if len(key) != 16:
            raise ValueError("AES-128-CTR key must be 16 bytes")
        self._ecb = _Cipher(_algorithms.AES(bytes(key)), _modes.ECB()).encryptor()
        # Grid-path scratch (counter-block input + ECB output), reused
        # across bursts of the same geometry so the steady-state data
        # plane allocates nothing per burst beyond its plaintext.
        self._grid_ctr: Optional[bytearray] = None
        self._grid_out: Optional[bytearray] = None
        super().__init__(key)

    @staticmethod
    def _scalar_counter_blocks(nonce: bytes, nblocks: int) -> bytes:
        base = int.from_bytes(nonce, "big")
        return b"".join(
            ((base + i) & _MASK128).to_bytes(16, "big") for i in range(nblocks)
        )

    def keystream(self, nonce: bytes, length: int) -> bytes:
        nblocks = -(-length // 16)
        if nblocks <= 1:
            return self._ecb.update(nonce if type(nonce) is bytes else bytes(nonce))
        lo = int.from_bytes(nonce[8:], "big")
        if _np is not None and nblocks >= 4 and lo + nblocks <= _MASK64:
            # Native-endian arithmetic, one byteswap pass at the end —
            # element-wise stores into a big-endian array pay a per-op
            # byte-swap that dominates the assembly otherwise.
            blocks = _np.empty((nblocks, 2), dtype=_np.uint64)
            blocks[:, 0] = int.from_bytes(nonce[:8], "big")
            blocks[:, 1] = lo + _np.arange(nblocks, dtype=_np.uint64)
            blocks.byteswap(inplace=True)
            ctr = blocks.tobytes()
        else:
            ctr = self._scalar_counter_blocks(nonce, nblocks)
        return self._ecb.update(ctr)

    def _burst_counter_blocks(self, nonces, counts):
        """Counter blocks for a whole burst as one ``bytes`` buffer."""
        if _np is None or len(nonces) < 2:
            return b"".join(
                self._scalar_counter_blocks(n, c) for n, c in zip(nonces, counts)
            )
        pairs = _np.frombuffer(b"".join(nonces), dtype=">u8").reshape(-1, 2)
        counts_np = _np.asarray(counts, dtype=_np.uint64)
        lo = pairs[:, 1].astype(_np.uint64)
        if bool((lo > _np.uint64(_MASK64) - counts_np).any()):
            # A record's counter run would carry out of the low 64
            # bits (probability ~2^-59 per record): exact fallback.
            return b"".join(
                self._scalar_counter_blocks(n, c) for n, c in zip(nonces, counts)
            )
        hi = pairs[:, 0].astype(_np.uint64)
        first = counts[0]
        if counts.count(first) == len(counts):
            # Uniform burst (the common record-data-plane shape): pure
            # broadcasting, no repeat/cumsum bookkeeping.
            blocks = _np.empty((len(counts), first, 2), dtype=_np.uint64)
            blocks[:, :, 0] = hi[:, None]
            blocks[:, :, 1] = lo[:, None] + _np.arange(first, dtype=_np.uint64)
        else:
            total = int(counts_np.sum())
            counts_i = counts_np.astype(_np.int64)
            starts = _np.repeat(_np.cumsum(counts_i) - counts_i, counts_i)
            incr = _np.arange(total, dtype=_np.uint64) - starts.astype(_np.uint64)
            blocks = _np.empty((total, 2), dtype=_np.uint64)
            blocks[:, 0] = _np.repeat(hi, counts_i)
            blocks[:, 1] = _np.repeat(lo, counts_i) + incr
        blocks.byteswap(inplace=True)
        return blocks.tobytes()

    def keystream_batch(self, nonces: Sequence[bytes], sizes: Sequence[int]) -> List:
        """One fused ECB call for the whole burst's counter blocks."""
        counts = [-(-s // 16) for s in sizes]
        ks = self._ecb.update(self._burst_counter_blocks(nonces, counts))
        view = memoryview(ks)
        out = []
        off = 0
        for count in counts:
            end = off + count * 16
            out.append(view[off:end])
            off = end
        return out

    def keystream_concat(self, nonces: Sequence[bytes], sizes: Sequence[int]) -> bytes:
        """Packed burst keystream: one ECB call, no per-record slices.

        When every record needs a whole number of blocks (the mcTLS app
        record body is MAC-padded to one) the fused ECB output *is* the
        packed keystream; otherwise the per-record block padding is
        stripped with one vectorized copy (uniform sizes) or a slice
        join (mixed sizes).
        """
        if not sizes:
            return b""
        counts = [-(-s // 16) for s in sizes]
        ks = self._ecb.update(self._burst_counter_blocks(nonces, counts))
        first = sizes[0]
        uniform = sizes.count(first) == len(sizes)
        if uniform and first == counts[0] * 16:
            return ks
        if uniform and _np is not None:
            padded = counts[0] * 16
            arr = _np.frombuffer(ks, dtype=_np.uint8).reshape(-1, padded)
            return arr[:, :first].tobytes()
        view = memoryview(ks)
        out = []
        off = 0
        for count, size in zip(counts, sizes):
            out.append(view[off : off + size])
            off += count * 16
        return b"".join(out)

    def keystream_grid(self, nonces, count: int, size: int) -> bytes:
        """Uniform-burst packed keystream from one packed nonce buffer.

        The grid shape skips even the per-record nonce objects: counter
        blocks for the whole burst broadcast straight out of the packed
        buffer, one ECB call encrypts them, and any per-record block
        padding is stripped with a single vectorized copy.
        """
        if not count or not size:
            return b""
        nblocks = -(-size // 16)
        if _np is None:
            view = memoryview(nonces)
            return b"".join(
                memoryview(self.keystream(bytes(view[i * 16 : i * 16 + 16]), size))[
                    :size
                ]
                for i in range(count)
            )
        pairs = _np.frombuffer(nonces, dtype=">u8").reshape(count, 2)
        lo = pairs[:, 1].astype(_np.uint64)
        if bool((lo > _np.uint64(_MASK64) - _np.uint64(nblocks)).any()):
            view = memoryview(nonces)
            ctr = b"".join(
                self._scalar_counter_blocks(bytes(view[i * 16 : i * 16 + 16]), nblocks)
                for i in range(count)
            )
        else:
            blocks = _np.empty((count, nblocks, 2), dtype=_np.uint64)
            blocks[:, :, 0] = pairs[:, 0].astype(_np.uint64)[:, None]
            blocks[:, :, 1] = lo[:, None] + _np.arange(nblocks, dtype=_np.uint64)
            blocks.byteswap(inplace=True)
            ctr = blocks.tobytes()
        ks = self._ecb.update(ctr)
        if size == nblocks * 16:
            return ks
        arr = _np.frombuffer(ks, dtype=_np.uint8).reshape(count, nblocks * 16)
        return arr[:, :size].tobytes()

    def keystream_grid_arr(self, nonces, count: int, size: int):
        """:meth:`keystream_grid` as a zero-copy numpy view.

        Returns a ``(count, size)`` uint8 array over this generator's
        reusable scratch buffer — **valid only until the next keystream
        call on this generator** — so a burst decrypt can XOR it against
        the wire bodies without materialising keystream ``bytes`` at
        all.  Counter blocks assemble in place in the scratch input and
        ``update_into`` writes the ECB output into the scratch output:
        the steady-state per-burst cost is one AES pass and no
        allocations.  Returns ``None`` when numpy is unavailable
        (callers fall back to :meth:`keystream_grid`).
        """
        if _np is None:
            return None
        nblocks = -(-size // 16)
        padded = nblocks * 16
        total = count * padded
        ctr_buf = self._grid_ctr
        if ctr_buf is None or len(ctr_buf) != total:
            # One geometry per connection in steady state; realloc only
            # when the burst shape actually changes.
            ctr_buf = self._grid_ctr = bytearray(total)
            # update_into needs block_size - 1 bytes of slack.
            self._grid_out = bytearray(total + 16)
        pairs = _np.frombuffer(nonces, dtype=">u8").reshape(count, 2)
        lo = pairs[:, 1].astype(_np.uint64)
        if bool((lo > _np.uint64(_MASK64) - _np.uint64(nblocks)).any()):
            view = memoryview(nonces)
            ctr_buf[:] = b"".join(
                self._scalar_counter_blocks(bytes(view[i * 16 : i * 16 + 16]), nblocks)
                for i in range(count)
            )
        else:
            blocks = _np.frombuffer(ctr_buf, dtype=_np.uint64).reshape(
                count, nblocks, 2
            )
            blocks[:, :, 0] = pairs[:, 0].astype(_np.uint64)[:, None]
            blocks[:, :, 1] = lo[:, None] + _np.arange(nblocks, dtype=_np.uint64)
            blocks.byteswap(inplace=True)
        self._ecb.update_into(ctr_buf, self._grid_out)
        out = _np.frombuffer(self._grid_out, dtype=_np.uint8)[:total]
        return out.reshape(count, padded)[:, :size]


class ChaCha20Keystream(KeystreamGenerator):
    """ChaCha20 keystream via per-record OpenSSL contexts.

    ``cryptography`` binds the 16-byte nonce (64-bit counter || 64-bit
    IV, the original DJB layout) at context construction, so there is no
    persistent-context trick like AES-ECB's: each record pays ~15 µs of
    context setup.  The suite exists for completeness — it wins only
    once records are large enough for C-speed bulk throughput to
    amortise the setup — and the pool keeps cross-hop re-derivations
    cheap.  The mcTLS key schedule carves 16-byte bulk keys
    (``ENC_KEY_LEN``); ChaCha20 needs 32, so the generator expands the
    suite key with SHA-256 — simulation-grade, like SHA-CTR itself.
    """

    block_size = 64
    _pool_tag = b"chacha20"

    def __init__(self, key: bytes) -> None:
        key = bytes(key)
        self._key32 = key if len(key) == 32 else hashlib.sha256(key).digest()
        super().__init__(key)

    def keystream(self, nonce: bytes, length: int) -> bytes:
        enc = _Cipher(
            _algorithms.ChaCha20(self._key32, bytes(nonce)), mode=None
        ).encryptor()
        if length <= len(_ZEROS):
            return enc.update(_ZEROS[:length])
        return enc.update(bytes(length))


class CryptoProvider:
    """A bundle of record-plane primitive implementations."""

    name = "base"
    available = True

    def mac_context(self, key: bytes):
        """Per-key record-MAC object exposing ``digest(*parts)``.

        Every provider's MAC is HMAC-SHA256 — identical bytes — so this
        only chooses *who* computes it.  The cached-context
        implementation is shared: all MAC slots (TLS record MAC and the
        three mcTLS slots) route through here.
        """
        return CachedHmacSha256(key)

    def hmac(self, key: bytes, *parts) -> bytes:
        return self.mac_context(key).digest(*parts)


class PurePythonProvider(CryptoProvider):
    """The zero-dependency provider: SHA-CTR keystreams, hashlib HMAC."""

    name = "pure"

    def shactr_keystream(self, key: bytes) -> ShaCtrCipher:
        return ShaCtrCipher(key)


class OpenSSLProvider(CryptoProvider):
    """OpenSSL-backed provider via the ``cryptography`` package."""

    name = "openssl"
    available = _CRYPTOGRAPHY_OK

    def __init__(self) -> None:
        self._mac_cls = None

    def _require(self) -> None:
        if not self.available:
            raise RuntimeError(
                "OpenSSL provider unavailable: the 'cryptography' package "
                "is not importable"
            )

    def mac_context(self, key: bytes):
        cls = self._mac_cls
        if cls is None:
            cls = self._mac_cls = self._pick_mac_backend()
        return cls(key)

    def _pick_mac_backend(self):
        if _HMAC_BACKEND == "hashlib" or not self.available:
            return CachedHmacSha256
        if _HMAC_BACKEND == "hazmat":
            return OpenSSLHmacSha256
        # auto: measure both cached-context backends once; identical
        # bytes, so this is purely a speed decision.
        key = b"\x00" * 32
        data = b"\x5a" * 352
        hashlib_ctx = CachedHmacSha256(key)
        hazmat_ctx = OpenSSLHmacSha256(key)
        t_hashlib = _best_ns(lambda: hashlib_ctx.digest(data))
        t_hazmat = _best_ns(lambda: hazmat_ctx.digest(data))
        return OpenSSLHmacSha256 if t_hazmat < t_hashlib else CachedHmacSha256

    def aes_ctr_keystream(self, key: bytes) -> AesCtrKeystream:
        self._require()
        return AesCtrKeystream(key)

    def chacha20_keystream(self, key: bytes) -> ChaCha20Keystream:
        self._require()
        return ChaCha20Keystream(key)


PURE = PurePythonProvider()
OPENSSL = OpenSSLProvider()

PROVIDERS: Dict[str, CryptoProvider] = {PURE.name: PURE, OPENSSL.name: OPENSSL}

DEFAULT_PROVIDER = PURE


def get_provider(name: str) -> CryptoProvider:
    try:
        return PROVIDERS[name]
    except KeyError:
        raise KeyError(f"unknown crypto provider {name!r}") from None
