"""Counting cryptographic operations.

The paper's Table 3 reports the number of cryptographic operations each party
performs during a handshake, broken into six categories.  The primitives in
:mod:`repro.crypto` report each operation they perform to a thread-local
:class:`OpCounter`, so an experiment can run a real handshake and read off
exactly the Table 3 row it produced.

Categories (matching Table 3 of the paper):

* ``hash`` — cryptographic hash / HMAC / PRF block computations counted at
  the level the paper counts them (one logical hash per PRF invocation).
* ``secret_comp`` — shared-secret computations (Diffie-Hellman combines or
  RSA decryptions of premaster secrets).
* ``key_gen`` — symmetric key blocks generated (PRF-based key derivations).
* ``asym_verify`` — signature verifications (and certificate verifications).
* ``sym_encrypt`` — symmetric encryption operations (one per logical
  message, not per block).
* ``sym_decrypt`` — symmetric decryption operations.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional

CATEGORIES = (
    "hash",
    "secret_comp",
    "key_gen",
    "asym_verify",
    "asym_sign",
    "sym_encrypt",
    "sym_decrypt",
)


@dataclass
class OpCounter:
    """A tally of cryptographic operations, one bucket per category."""

    counts: Dict[str, int] = field(default_factory=lambda: {c: 0 for c in CATEGORIES})

    def add(self, category: str, n: int = 1) -> None:
        if category not in self.counts:
            raise ValueError(f"unknown op category: {category!r}")
        self.counts[category] += n

    def get(self, category: str) -> int:
        return self.counts[category]

    def reset(self) -> None:
        for c in self.counts:
            self.counts[c] = 0

    def snapshot(self) -> Dict[str, int]:
        return dict(self.counts)

    def __sub__(self, other: "OpCounter") -> "OpCounter":
        diff = OpCounter()
        for c in CATEGORIES:
            diff.counts[c] = self.counts[c] - other.counts[c]
        return diff

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(f"{c}={v}" for c, v in self.counts.items() if v)
        return f"OpCounter({parts})"


_local = threading.local()


def current_counter() -> Optional[OpCounter]:
    """Return the active counter for this thread, or ``None``."""
    return getattr(_local, "counter", None)


def count_op(category: str, n: int = 1) -> None:
    """Record ``n`` operations of ``category`` on the active counter, if any."""
    # Inlined current_counter(): this runs per record encrypt/decrypt on
    # the data plane, where the common case is "no counter active".
    counter = getattr(_local, "counter", None)
    if counter is not None:
        counter.add(category, n)


@contextmanager
def counting(counter: Optional[OpCounter] = None) -> Iterator[OpCounter]:
    """Activate ``counter`` (or a fresh one) for the duration of the block.

    Nested ``counting`` blocks stack: the innermost counter receives the
    operations; outer counters are restored on exit.
    """
    if counter is None:
        counter = OpCounter()
    previous = current_counter()
    _local.counter = counter
    try:
        yield counter
    finally:
        _local.counter = previous
