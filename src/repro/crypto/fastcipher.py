"""A fast SHA-256 counter-mode stream cipher for bulk simulation.

Pure-Python AES runs at tens of kilobytes per second, which makes the
paper's multi-megabyte transfer experiments impractically slow to simulate
with real bytes.  This module provides a keystream cipher built from
``hashlib.sha256`` (which runs at C speed): keystream block ``i`` is
``SHA256(key || nonce || counter_i)``, XORed into the data via big-integer
arithmetic.

It is a drop-in replacement for the AES-CTR path in a cipher suite: same
key sizes, same "IV + ciphertext" record geometry, symmetric encrypt and
decrypt.  It exists purely so benchmarks can move real bytes through the
real record protocol at tractable speed; it is *not* a vetted cipher.

The block function is pinned by the golden-vector tests
(``tests/golden/record_vectors.json``), so optimisations here must be
bit-exact.  The hot loop hashes the ``key || nonce`` prefix once into a
SHA-256 context and ``.copy()``-es it per counter block instead of
rehashing the prefix; counter encodings are precomputed for the record
range.  The blocks are assembled with ``b"".join`` over a list — the
preallocated-``bytearray`` slice-assign variant was measured ~24%
slower (41.7 vs 54.9 MB/s on 1.4 KB records), because the join is a
single C pass while slice assignment pays per-block interpreter work.
"""

from __future__ import annotations

import hashlib

# Keystream is generated and consumed ~64 KiB at a time: big enough to
# amortise the per-chunk big-integer XOR, small enough that peak memory
# stays bounded no matter how large the record batch is.
_CHUNK_BLOCKS = 2048
_CHUNK_BYTES = _CHUNK_BLOCKS * 32

# Counter encodings for every block a record-sized (< 64 KiB) message
# can need; larger messages fall back to encoding on the fly per chunk.
_COUNTER_BYTES = tuple(i.to_bytes(8, "big") for i in range(_CHUNK_BLOCKS))

_int_from_bytes = int.from_bytes

# Keystream memo.  Every hop of a simulated mcTLS chain re-derives the
# same per-record keystream — the client encrypts under (key, nonce),
# then each middlebox decrypts under the *same* (key, nonce), and the
# server decrypts it once more.  The keystream is a pure function of
# (key, nonce, block count), so memoizing it turns every hop after the
# first into a dict hit.  This exploits the single-process simulation
# topology (a real distributed deployment recomputes at each host), which
# is exactly this cipher's charter: make in-process experiments fast.
# Bounded FIFO: only record-sized streams are cached, so worst-case
# memory is _KEYSTREAM_CACHE_MAX * _CACHEABLE_BYTES = 4 MiB.
_KEYSTREAM_CACHE_MAX = 1024
_CACHEABLE_BYTES = 4096
_keystream_cache: dict = {}


def clear_keystream_cache() -> None:
    """Drop all memoized keystreams (for tests and fresh-state benchmarks)."""
    _keystream_cache.clear()


class ShaCtrCipher:
    """Keystream cipher: block i = SHA256(key || nonce || counter)."""

    block_size = 32

    __slots__ = ("_key", "_key_ctx")

    def __init__(self, key: bytes):
        if len(key) not in (16, 32):
            raise ValueError("ShaCtr key must be 16 or 32 bytes")
        self._key = key
        # The key prefix of every block hash, absorbed once per cipher.
        self._key_ctx = hashlib.sha256(key)

    def _base_ctx(self, nonce):
        """SHA-256 context primed with ``key || nonce``."""
        ctx = self._key_ctx.copy()
        ctx.update(nonce)
        return ctx

    @staticmethod
    def _stream_chunk(base, first_block: int, length: int) -> bytes:
        nblocks = (length + 31) >> 5
        last = first_block + nblocks
        if last <= _CHUNK_BLOCKS:
            counters = _COUNTER_BYTES[first_block:last]
        else:
            counters = [c.to_bytes(8, "big") for c in range(first_block, last)]
        copy = base.copy
        blocks = []
        append = blocks.append
        for counter in counters:
            ctx = copy()
            ctx.update(counter)
            append(ctx.digest())
        stream = b"".join(blocks)
        return stream[:length] if length & 31 else stream

    def keystream(self, nonce: bytes, length: int) -> bytes:
        return self._stream_chunk(self._base_ctx(nonce), 0, length)

    def xor(self, nonce, data) -> bytes:
        """Encrypt or decrypt ``data`` (the operation is an involution).

        Accepts any bytes-like ``nonce``/``data`` (the record layers pass
        ``memoryview`` fragments).  Works in bounded-size chunks — one
        chunk of keystream exists at a time instead of a block list plus
        a full-length stream copy.  The single-chunk case (every record
        on the data plane) is inlined: the ``_stream_chunk`` indirection
        costs a measurable fraction of a small record's budget.
        """
        size = len(data)
        if not size:
            return b""
        if size <= _CHUNK_BYTES:
            nblocks = (size + 31) >> 5
            if type(nonce) is not bytes:
                nonce = bytes(nonce)
            cache_key = (self._key, nonce, nblocks)
            stream = _keystream_cache.get(cache_key)
            if stream is None:
                base = self._key_ctx.copy()
                base.update(nonce)
                copy = base.copy
                blocks = []
                append = blocks.append
                for counter in _COUNTER_BYTES[:nblocks]:
                    ctx = copy()
                    ctx.update(counter)
                    append(ctx.digest())
                stream = b"".join(blocks)
                if size <= _CACHEABLE_BYTES:
                    if len(_keystream_cache) >= _KEYSTREAM_CACHE_MAX:
                        del _keystream_cache[next(iter(_keystream_cache))]
                    _keystream_cache[cache_key] = stream
            if size & 31:
                stream = stream[:size]
            n = _int_from_bytes(data, "big") ^ _int_from_bytes(stream, "big")
            return n.to_bytes(size, "big")
        base = self._key_ctx.copy()
        base.update(nonce)
        out = bytearray(size)
        view = memoryview(data)
        for start in range(0, size, _CHUNK_BYTES):
            piece = view[start : start + _CHUNK_BYTES]
            stream = self._stream_chunk(base, start >> 5, len(piece))
            n = _int_from_bytes(piece, "big") ^ _int_from_bytes(stream, "big")
            out[start : start + len(piece)] = n.to_bytes(len(piece), "big")
        return bytes(out)
