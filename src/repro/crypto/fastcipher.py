"""A fast SHA-256 counter-mode stream cipher for bulk simulation.

Pure-Python AES runs at tens of kilobytes per second, which makes the
paper's multi-megabyte transfer experiments impractically slow to simulate
with real bytes.  This module provides a keystream cipher built from
``hashlib.sha256`` (which runs at C speed): keystream block ``i`` is
``SHA256(key || counter_i)``, XORed into the data via big-integer
arithmetic.

It is a drop-in replacement for the AES-CTR path in a cipher suite: same
key sizes, same "IV + ciphertext" record geometry, symmetric encrypt and
decrypt.  It exists purely so benchmarks can move real bytes through the
real record protocol at tractable speed; it is *not* a vetted cipher.
"""

from __future__ import annotations

import hashlib


# Keystream is generated and consumed ~64 KiB at a time: big enough to
# amortise the per-chunk big-integer XOR, small enough that peak memory
# stays bounded no matter how large the record batch is.
_CHUNK_BLOCKS = 2048


class ShaCtrCipher:
    """Keystream cipher: block i = SHA256(key || nonce || counter)."""

    block_size = 32

    def __init__(self, key: bytes):
        if len(key) not in (16, 32):
            raise ValueError("ShaCtr key must be 16 or 32 bytes")
        self._key = key

    def _stream_chunk(self, prefix: bytes, first_block: int, length: int) -> bytes:
        return b"".join(
            hashlib.sha256(prefix + counter.to_bytes(8, "big")).digest()
            for counter in range(first_block, first_block + (length + 31) // 32)
        )[:length]

    def keystream(self, nonce: bytes, length: int) -> bytes:
        return self._stream_chunk(self._key + nonce, 0, length)

    def xor(self, nonce: bytes, data: bytes) -> bytes:
        """Encrypt or decrypt ``data`` (the operation is an involution).

        Works in bounded-size chunks — one chunk of keystream exists at a
        time instead of a block list plus a full-length stream copy.
        """
        if not data:
            return b""
        prefix = self._key + nonce
        out = bytearray(len(data))
        view = memoryview(data)
        chunk_len = _CHUNK_BLOCKS * 32
        for start in range(0, len(data), chunk_len):
            piece = view[start : start + chunk_len]
            stream = self._stream_chunk(prefix, start // 32, len(piece))
            n = int.from_bytes(piece, "big") ^ int.from_bytes(stream, "big")
            out[start : start + len(piece)] = n.to_bytes(len(piece), "big")
        return bytes(out)
