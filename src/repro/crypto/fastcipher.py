"""A fast SHA-256 counter-mode stream cipher for bulk simulation.

Pure-Python AES runs at tens of kilobytes per second, which makes the
paper's multi-megabyte transfer experiments impractically slow to simulate
with real bytes.  This module provides a keystream cipher built from
``hashlib.sha256`` (which runs at C speed): keystream block ``i`` is
``SHA256(key || nonce || counter_i)``, XORed into the data via big-integer
arithmetic (or NumPy when available, see :func:`xor_bytes`).

It is a drop-in replacement for the AES-CTR path in a cipher suite: same
key sizes, same "IV + ciphertext" record geometry, symmetric encrypt and
decrypt.  It exists purely so benchmarks can move real bytes through the
real record protocol at tractable speed; it is *not* a vetted cipher.

The block function is pinned by the golden-vector tests
(``tests/golden/record_vectors.json``), so optimisations here must be
bit-exact.  The hot loop hashes the ``key || nonce`` prefix once into a
SHA-256 context and ``.copy()``-es it per counter block instead of
rehashing the prefix; counter encodings are precomputed for the record
range.  The blocks are assembled with ``b"".join`` over a list — the
preallocated-``bytearray`` slice-assign variant was measured ~24%
slower (41.7 vs 54.9 MB/s on 1.4 KB records), because the join is a
single C pass while slice assignment pays per-block interpreter work.
"""

from __future__ import annotations

import hashlib
import os as _os
import time as _time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

try:  # NumPy ships with the scientific-python base image; gate it anyway.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only on minimal images
    _np = None

# Keystream is generated and consumed ~64 KiB at a time: big enough to
# amortise the per-chunk big-integer XOR, small enough that peak memory
# stays bounded no matter how large the record batch is.
_CHUNK_BLOCKS = 2048
_CHUNK_BYTES = _CHUNK_BLOCKS * 32

# Counter encodings for every block a record-sized (< 64 KiB) message
# can need; larger messages fall back to encoding on the fly per chunk.
_COUNTER_BYTES = tuple(i.to_bytes(8, "big") for i in range(_CHUNK_BLOCKS))

_int_from_bytes = int.from_bytes

# Below the crossover the big-integer XOR wins (two int conversions
# beat NumPy's fixed frombuffer/tobytes overhead); above it NumPy's C
# loop is several times faster (typical host: 256 B bigint 1.2 µs vs
# numpy 1.5 µs; 2 KiB 8.7 µs vs 2.7 µs).  Batched XOR over a
# concatenated burst is the main beneficiary: a burst of 256 B records
# crosses the threshold even though each record alone would not.
#
# The crossover used to be hardcoded at 512 B; it is now measured once
# at import because the true value moves with the interpreter, NumPy
# build, and CPU (a slow frombuffer pushes it past 1 KiB; a fast one
# pulls it under 256 B).  Both backends are bit-exact, so the only
# effect of the calibration is speed.  ``REPRO_XOR_CROSSOVER=<bytes>``
# pins it for deterministic CI.


def _tight_best_ns(fn, reps: int = 48, rounds: int = 3) -> float:
    """Best-of-``rounds`` mean ns/call — small enough to run at import."""
    best = float("inf")
    for _ in range(rounds):
        start = _time.perf_counter_ns()
        for _ in range(reps):
            fn()
        elapsed = (_time.perf_counter_ns() - start) / reps
        if elapsed < best:
            best = elapsed
    return best


def _measured_numpy_crossover(environ=None) -> int:
    """Smallest probed size at which the NumPy XOR beats the bigint XOR.

    Probes doubling sizes (~1 ms total at import).  Returns an
    effectively-infinite bound when NumPy is absent, the env override
    when ``REPRO_XOR_CROSSOVER`` is set, and the old 512 B default if
    calibration itself fails.
    """
    env = (environ if environ is not None else _os.environ).get(
        "REPRO_XOR_CROSSOVER"
    )
    if env is not None:
        try:
            return max(0, int(env))
        except ValueError:
            pass
    if _np is None:
        return 1 << 62
    try:
        for size in (128, 256, 512, 1024, 2048):
            data = b"\x5a" * size
            stream = b"\xa5" * size

            def _bigint():
                n = _int_from_bytes(data, "big") ^ _int_from_bytes(stream, "big")
                n.to_bytes(size, "big")

            def _numpy():
                a = _np.frombuffer(data, dtype=_np.uint8)
                b = _np.frombuffer(stream, dtype=_np.uint8)
                (a ^ b).tobytes()

            if _tight_best_ns(_numpy) < _tight_best_ns(_bigint):
                return size
        return 4096
    except Exception:  # pragma: no cover - defensive
        return 512


_NUMPY_MIN_BYTES = _measured_numpy_crossover()


def xor_bytes(data, stream, size: Optional[int] = None) -> bytes:
    """XOR two equal-length bytes-likes, picking the fastest backend.

    Both backends are bit-exact (XOR is XOR); the golden vectors pin
    this.  ``size`` may be passed when the caller already knows the
    length.
    """
    if size is None:
        size = len(data)
    if _np is not None and size >= _NUMPY_MIN_BYTES:
        a = _np.frombuffer(data, dtype=_np.uint8)
        b = _np.frombuffer(stream, dtype=_np.uint8)
        return (a ^ b).tobytes()
    n = _int_from_bytes(data, "big") ^ _int_from_bytes(stream, "big")
    return n.to_bytes(size, "big")


def xor_concat(bodies: Sequence, streams: Sequence, sizes: Sequence[int]) -> bytes:
    """XOR each body with its keystream in one pass over the concatenation.

    ``streams[i]`` may be longer than ``sizes[i]`` (full-block keystreams
    from the pool); the tail is ignored.  Returns the concatenated XOR —
    the caller slices per record.  Identical bytes to per-record
    :meth:`ShaCtrCipher.xor` calls, but the XOR itself runs once over the
    whole burst, which is where NumPy's fixed overhead amortises.
    """
    data = b"".join(bodies)
    ks = b"".join(
        s if len(s) == n else memoryview(s)[:n] for s, n in zip(streams, sizes)
    )
    return xor_bytes(data, ks, len(data))


# Keystream memo.  Every hop of a simulated mcTLS chain re-derives the
# same per-record keystream — the client encrypts under (key, nonce),
# then each middlebox decrypts under the *same* (key, nonce), and the
# server decrypts it once more.  The keystream is a pure function of
# (key, nonce, block count), so memoizing it turns every hop after the
# first into a dict hit.  This exploits the single-process simulation
# topology (a real distributed deployment recomputes at each host), which
# is exactly this cipher's charter: make in-process experiments fast.
# Bounded FIFO: only record-sized streams are cached, so worst-case
# memory with the defaults is _KEYSTREAM_CACHE_MAX * _CACHEABLE_BYTES
# = 4 MiB.
_KEYSTREAM_CACHE_MAX = 1024
_CACHEABLE_BYTES = 4096

# Ceiling for size_to_workload: however the workload is shaped, the pool
# never commits to more than this much keystream memory.
_POOL_BUDGET_BYTES = 8 << 20

# Provider-awareness policy for :meth:`KeystreamPool.worthwhile`:
# ``auto`` compares a generator's measured cost against the pool's
# measured hit cost; ``on``/``off`` force the answer (deterministic CI).
_POOL_MODE = _os.environ.get("REPRO_KEYSTREAM_POOL", "auto")

# A pooled hit must beat regeneration by this factor to justify the
# admission bookkeeping and memory the pool spends on misses.
_POOL_WIN_FACTOR = 2.0


class KeystreamPool:
    """Bounded FIFO pool of memoized keystreams with hit/miss accounting.

    The pool wraps the PR 3 memo dict with explicit statistics
    (mirroring the memoization counters introduced there) and a sizing
    knob: :meth:`size_to_workload` re-bounds the pool from an observed
    record-size distribution so a workload of, say, 1400 B records gets
    a deeper pool than the 4 KiB-record default would allow within the
    same memory budget.

    Counter updates are plain int increments without a lock: the data
    plane is single-threaded per connection, and the counters are
    advisory (a torn read under races costs an off-by-one in a stat,
    never a wrong keystream).  :meth:`publish_to` folds the counters
    into an :class:`repro.core.Instruments` as ``keystream.pool.hit`` /
    ``keystream.pool.miss`` / ``keystream.pool.evict`` deltas.
    """

    __slots__ = (
        "max_entries",
        "cacheable_bytes",
        "hits",
        "misses",
        "evictions",
        "_streams",
        "_published",
        "_hit_cost_ns",
    )

    def __init__(
        self,
        max_entries: int = _KEYSTREAM_CACHE_MAX,
        cacheable_bytes: int = _CACHEABLE_BYTES,
    ) -> None:
        self.max_entries = max_entries
        self.cacheable_bytes = cacheable_bytes
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._streams: Dict[tuple, bytes] = {}
        self._published = {"hit": 0, "miss": 0, "evict": 0}
        self._hit_cost_ns: Optional[float] = None

    def __len__(self) -> int:
        return len(self._streams)

    # -- provider awareness --------------------------------------------

    def hit_cost_ns(self) -> float:
        """Measured cost of one pool hit (dict get + accounting), cached.

        Measured on a scratch dict so the calibration never perturbs the
        live store or the hit/miss counters.
        """
        if self._hit_cost_ns is None:
            probe = {("k", b"n", 11): b"\x00" * 352}
            key = ("k", b"n", 11)

            def _hit():
                probe.get(key)

            self._hit_cost_ns = _tight_best_ns(_hit) + 50.0  # +accounting
        return self._hit_cost_ns

    def worthwhile(self, gen_cost_ns: float) -> bool:
        """Should a keystream source with this per-stream generation
        cost memoize through the pool?

        This is where the pool is provider-aware: the pure SHA-CTR
        generator (~8 µs/stream) always clears the bar, while OpenSSL's
        fused AES-CTR generation (~0.5 µs/record) is cheaper than a hit
        and self-disables.  ``REPRO_KEYSTREAM_POOL=on|off`` overrides
        the measurement for deterministic CI.
        """
        if _POOL_MODE == "on":
            return True
        if _POOL_MODE == "off":
            return False
        return gen_cost_ns > _POOL_WIN_FACTOR * self.hit_cost_ns()

    def put(self, cache_key: tuple, stream: bytes, size: int) -> None:
        """Admit a keystream if the record is pool-sized, evicting FIFO."""
        if size > self.cacheable_bytes:
            return
        streams = self._streams
        if len(streams) >= self.max_entries:
            del streams[next(iter(streams))]
            self.evictions += 1
        streams[cache_key] = stream

    def size_to_workload(
        self, record_sizes: Iterable[int], budget_bytes: int = _POOL_BUDGET_BYTES
    ) -> None:
        """Re-bound the pool to fit a workload's record-size distribution.

        ``record_sizes`` is a sample of plaintext-record sizes (e.g. from
        a load profile).  The admission cutoff becomes the sample's
        maximum (clamped to one keystream chunk) and the entry bound
        becomes ``budget_bytes`` divided by the sample mean, so the
        memory commitment stays ~``budget_bytes`` whether the workload
        sends 256 B or 4 KiB records.  Existing entries are kept; the
        FIFO shrinks lazily if the new bound is lower.
        """
        sizes = [s for s in record_sizes if s > 0]
        if not sizes:
            return
        # +16+48: nonce and MAC overheads mean ciphertext bodies run a
        # little larger than the plaintext sample.
        self.cacheable_bytes = min(max(sizes) + 64, _CHUNK_BYTES)
        mean = sum(sizes) / len(sizes) + 64
        self.max_entries = max(64, min(1 << 20, int(budget_bytes / mean)))

    def stats(self) -> Dict[str, int]:
        return {
            "hit": self.hits,
            "miss": self.misses,
            "evict": self.evictions,
            "entries": len(self._streams),
            "max_entries": self.max_entries,
            "cacheable_bytes": self.cacheable_bytes,
        }

    def publish_to(self, instruments) -> None:
        """Fold counter deltas since the last publish into ``instruments``."""
        if instruments is None:
            return
        published = self._published
        for name, value in (
            ("hit", self.hits),
            ("miss", self.misses),
            ("evict", self.evictions),
        ):
            delta = value - published[name]
            if delta:
                instruments.inc(f"keystream.pool.{name}", delta)
                published[name] = value

    def reset_stats(self) -> None:
        self.hits = self.misses = self.evictions = 0
        self._published = {"hit": 0, "miss": 0, "evict": 0}

    def clear(self) -> None:
        """Drop all streams (stats survive; see :meth:`reset_stats`)."""
        self._streams.clear()


KEYSTREAM_POOL = KeystreamPool()

# Legacy alias: PR 3 code and tests address the memo as a module-level
# dict.  This is the *same object* as the pool's store — mutated in
# place, never rebound — so both views always agree.
_keystream_cache: dict = KEYSTREAM_POOL._streams


def clear_keystream_cache() -> None:
    """Drop all memoized keystreams (for tests and fresh-state benchmarks)."""
    KEYSTREAM_POOL.clear()


class ShaCtrCipher:
    """Keystream cipher: block i = SHA256(key || nonce || counter)."""

    block_size = 32

    __slots__ = ("_key", "_key_ctx")

    def __init__(self, key: bytes):
        if len(key) not in (16, 32):
            raise ValueError("ShaCtr key must be 16 or 32 bytes")
        self._key = key
        # The key prefix of every block hash, absorbed once per cipher.
        self._key_ctx = hashlib.sha256(key)

    def _base_ctx(self, nonce):
        """SHA-256 context primed with ``key || nonce``."""
        ctx = self._key_ctx.copy()
        ctx.update(nonce)
        return ctx

    @staticmethod
    def _stream_chunk(base, first_block: int, length: int) -> bytes:
        nblocks = (length + 31) >> 5
        last = first_block + nblocks
        if last <= _CHUNK_BLOCKS:
            counters = _COUNTER_BYTES[first_block:last]
        else:
            counters = [c.to_bytes(8, "big") for c in range(first_block, last)]
        copy = base.copy
        blocks = []
        append = blocks.append
        for counter in counters:
            ctx = copy()
            ctx.update(counter)
            append(ctx.digest())
        stream = b"".join(blocks)
        return stream[:length] if length & 31 else stream

    def keystream(self, nonce: bytes, length: int) -> bytes:
        return self._stream_chunk(self._base_ctx(nonce), 0, length)

    def stream_for(self, nonce: bytes, size: int) -> bytes:
        """Full-block keystream covering ``size`` bytes, through the pool.

        Returns the *untruncated* stream (``ceil(size/32) * 32`` bytes);
        callers slice.  Single-chunk sizes only — the batched data plane
        never sees larger records (the record layers fragment at 16 KiB).
        """
        nblocks = (size + 31) >> 5
        if type(nonce) is not bytes:
            nonce = bytes(nonce)
        cache_key = (self._key, nonce, nblocks)
        pool = KEYSTREAM_POOL
        stream = _keystream_cache.get(cache_key)
        if stream is None:
            pool.misses += 1
            base = self._key_ctx.copy()
            base.update(nonce)
            copy = base.copy
            blocks = []
            append = blocks.append
            for counter in _COUNTER_BYTES[:nblocks]:
                ctx = copy()
                ctx.update(counter)
                append(ctx.digest())
            stream = b"".join(blocks)
            pool.put(cache_key, stream, size)
        else:
            pool.hits += 1
        return stream

    def xor(self, nonce, data) -> bytes:
        """Encrypt or decrypt ``data`` (the operation is an involution).

        Accepts any bytes-like ``nonce``/``data`` (the record layers pass
        ``memoryview`` fragments).  Works in bounded-size chunks — one
        chunk of keystream exists at a time instead of a block list plus
        a full-length stream copy.
        """
        size = len(data)
        if not size:
            return b""
        if size <= _CHUNK_BYTES:
            stream = self.stream_for(nonce, size)
            if size & 31:
                stream = stream[:size]
            return xor_bytes(data, stream, size)
        base = self._key_ctx.copy()
        base.update(nonce)
        out = bytearray(size)
        view = memoryview(data)
        for start in range(0, size, _CHUNK_BYTES):
            piece = view[start : start + _CHUNK_BYTES]
            stream = self._stream_chunk(base, start >> 5, len(piece))
            out[start : start + len(piece)] = xor_bytes(piece, stream, len(piece))
        return bytes(out)

    def xor_batch(self, items: Sequence[Tuple[bytes, object]]) -> List[bytes]:
        """Vectorized :meth:`xor` over ``(nonce, data)`` pairs.

        Keystreams come from the pool per record (so cross-hop memo hits
        still apply); the XOR runs once over the concatenated burst.
        Byte-identical to ``[self.xor(n, d) for n, d in items]``.
        """
        bodies: List[object] = []
        streams: List[bytes] = []
        sizes: List[int] = []
        for nonce, data in items:
            size = len(data)
            if size > _CHUNK_BYTES:  # oversized: bounded-chunk path per item
                return [self.xor(n, d) for n, d in items]
            bodies.append(data)
            sizes.append(size)
            streams.append(self.stream_for(nonce, size))
        joined = xor_concat(bodies, streams, sizes)
        out: List[bytes] = []
        off = 0
        for size in sizes:
            out.append(joined[off : off + size])
            off += size
        return out
