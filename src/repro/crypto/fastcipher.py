"""A fast SHA-256 counter-mode stream cipher for bulk simulation.

Pure-Python AES runs at tens of kilobytes per second, which makes the
paper's multi-megabyte transfer experiments impractically slow to simulate
with real bytes.  This module provides a keystream cipher built from
``hashlib.sha256`` (which runs at C speed): keystream block ``i`` is
``SHA256(key || counter_i)``, XORed into the data via big-integer
arithmetic.

It is a drop-in replacement for the AES-CTR path in a cipher suite: same
key sizes, same "IV + ciphertext" record geometry, symmetric encrypt and
decrypt.  It exists purely so benchmarks can move real bytes through the
real record protocol at tractable speed; it is *not* a vetted cipher.
"""

from __future__ import annotations

import hashlib


class ShaCtrCipher:
    """Keystream cipher: block i = SHA256(key || nonce || counter)."""

    block_size = 32

    def __init__(self, key: bytes):
        if len(key) not in (16, 32):
            raise ValueError("ShaCtr key must be 16 or 32 bytes")
        self._key = key

    def keystream(self, nonce: bytes, length: int) -> bytes:
        prefix = self._key + nonce
        blocks = []
        for counter in range((length + 31) // 32):
            h = hashlib.sha256(prefix + counter.to_bytes(8, "big"))
            blocks.append(h.digest())
        return b"".join(blocks)[:length]

    def xor(self, nonce: bytes, data: bytes) -> bytes:
        """Encrypt or decrypt ``data`` (the operation is an involution)."""
        stream = self.keystream(nonce, len(data))
        n = int.from_bytes(data, "big") ^ int.from_bytes(stream, "big")
        return n.to_bytes(len(data), "big") if data else b""
