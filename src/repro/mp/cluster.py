"""Multi-process sharded serving: N workers behind one listening port.

:class:`ClusterEndpointServer` forks ``workers`` processes, each running
the unmodified :class:`repro.aio.server.AsyncEndpointServer` over the
same sans-I/O connection seam — the protocol objects never learn they
are sharded.  Two kernel-level sharding strategies:

* **SO_REUSEPORT** (default where available) — every worker binds its
  own listening socket to the same address; the kernel hashes incoming
  connections across the sockets.  No shared accept queue, no
  thundering herd.
* **inherited-fd fallback** (``reuse_port=False`` or platforms without
  the option) — the parent binds once and every forked worker accepts
  on its copy of the same fd; the kernel wakes one (or a few) blocked
  acceptors per connection.  asyncio's ``sock_accept`` retries on
  ``BlockingIOError``, so lost accept races are benign.

The parent never accepts: once every worker reports ready it closes its
own socket copy (in fallback mode the workers' inherited fds keep the
socket alive) and becomes a pure control plane.  Control runs over one
duplex pipe per worker carrying tagged tuples::

    child -> parent:  ("ready", pid) | ("snapshot", dict) | ("stopped", dict)
    parent -> child:  ("snapshot", None) | ("stop", {"graceful", "timeout"})

Workers install a SIGTERM handler that triggers the same graceful drain
as a ``stop`` command, so external supervisors can roll the pool too.
:meth:`ClusterEndpointServer.stop` drains workers one at a time
(rolling): each worker stops accepting, finishes in-flight sessions,
reports its final stats and exits before the next worker is told to
stop — the port keeps serving throughout.

A crashed worker (e.g. SIGKILL mid-handshake) is isolated: its kernel
socket disappears, the survivors keep accepting, and the parent keeps
the worker's last known snapshot.  With ``respawn=True`` the parent also
*supervises*: a monitor thread notices the death and forks a replacement
into the same slot, bounded by ``max_respawns`` (a cluster-wide budget —
a crash-looping factory must not fork-bomb the host).  The dead worker's
final snapshot is retired into the aggregate so its served-connection
ledger survives the restart, and ``snapshot()/stop()`` report the number
of restarts under ``"respawns"``.  Respawn is opt-in; the default
remains no-respawn, supervision policy a layer up.

Shared state is the caller's problem, and fork is the mechanism:
anything captured by ``connection_factory`` *before* ``start()`` (most
importantly a :class:`repro.tls.TicketKeyManager` holding the ticket
keys) is copied into every worker, which is exactly what makes a ticket
sealed by one worker unseal at any other.  Per-worker mutable state
(session caches) is created *after* the fork via
``session_cache_factory``, so worker A's cache hit-ledger never aliases
worker B's.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
import signal
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Awaitable, Callable, Dict, List, Optional, Tuple

from repro.aio.connection import AsyncConnection
from repro.aio.server import AsyncEndpointServer
from repro.core import Connection
from repro.core.instrument import Instruments

__all__ = ["ClusterEndpointServer", "aggregate_snapshots"]

# Keys that are per-worker identity/detail, not summable load counters.
_NON_ADDITIVE_KEYS = frozenset({"pid", "instruments"})


def aggregate_snapshots(snaps: List[Dict[str, object]]) -> Dict[str, object]:
    """Sum per-worker stat snapshots into one cluster-wide view.

    Numeric scalars add; one level of nested dicts (the session-cache
    ledger) adds element-wise.  ``pid`` and ``instruments`` (which hold
    histogram summaries whose percentiles do not add) stay per-worker.
    """
    total: Dict[str, object] = {}
    for snap in snaps:
        for key, value in snap.items():
            if key in _NON_ADDITIVE_KEYS:
                continue
            if isinstance(value, bool):
                continue
            if isinstance(value, (int, float)):
                total[key] = total.get(key, 0) + value
            elif isinstance(value, dict):
                sub = total.setdefault(key, {})
                for sk, sv in value.items():
                    if isinstance(sv, (int, float)) and not isinstance(sv, bool):
                        sub[sk] = sub.get(sk, 0) + sv
    return total


@dataclass
class _WorkerRecord:
    index: int
    process: multiprocessing.process.BaseProcess
    pipe: object  # multiprocessing.connection.Connection
    pid: Optional[int] = None
    last_snapshot: Dict[str, object] = field(default_factory=dict)
    stopped: bool = False
    restarts: int = 0


class ClusterEndpointServer:
    """Fork ``workers`` processes each serving the same port.

    Same call shape as :class:`AsyncEndpointServer`, minus the event
    loop: the parent API is synchronous (``start`` / ``snapshot`` /
    ``stop``) because the loops live in the children.

    ``session_cache_factory`` (not a cache instance) is invoked inside
    each worker after the fork, so caches are per-worker by
    construction.  Cross-worker resumption therefore *requires* tickets:
    seed the ``connection_factory`` closure with a ``TicketKeyManager``
    before ``start()`` and every worker inherits the same keys.  (Key
    *rotation* after the fork is per-worker and would diverge; rotate by
    restarting the pool, or keep ``rotation_period`` above the pool's
    lifetime.)

    ``respawn=True`` turns on supervision: a monitor thread replaces any
    worker that dies unexpectedly, charging a cluster-wide budget of
    ``max_respawns`` forks (attempts count, not successes).  Workers
    stopped deliberately — rolling ``stop()`` or an external SIGTERM
    drain that reports ``stopped`` — are never respawned.
    """

    def __init__(
        self,
        listen_addr: Tuple[str, int],
        connection_factory: Callable[..., Connection],
        handler: Callable[[AsyncConnection], Awaitable[None]],
        workers: int = 2,
        session_cache_factory: Optional[Callable[[], object]] = None,
        max_connections: int = 256,
        handshake_timeout: float = 30.0,
        idle_timeout: float = 30.0,
        backlog: int = 512,
        reuse_port: bool = True,
        start_timeout: float = 15.0,
        control_timeout: float = 5.0,
        respawn: bool = False,
        max_respawns: int = 3,
        respawn_poll_interval: float = 0.05,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if "fork" not in multiprocessing.get_all_start_methods():
            raise RuntimeError(
                "ClusterEndpointServer requires the fork start method "
                "(closures and ticket keys are inherited by memory, not pickled)"
            )
        self.listen_addr = listen_addr
        self.connection_factory = connection_factory
        self.handler = handler
        self.workers = workers
        self.session_cache_factory = session_cache_factory
        self.max_connections = max_connections
        self.handshake_timeout = handshake_timeout
        self.idle_timeout = idle_timeout
        self.backlog = backlog
        self.reuse_port = reuse_port
        self.start_timeout = start_timeout
        self.control_timeout = control_timeout
        self.respawn = respawn
        self.max_respawns = max_respawns
        self.respawn_poll_interval = respawn_poll_interval
        self._ctx = multiprocessing.get_context("fork")
        self._parent_sock: Optional[socket.socket] = None
        self._port: Optional[int] = None
        self._reuse_port_active = False
        self._records: List[_WorkerRecord] = []
        self._started = False
        self._stopped = False
        self._lock = threading.RLock()
        self._monitor_stop = threading.Event()
        self._monitor_thread: Optional[threading.Thread] = None
        self._respawns_used = 0
        self._retired_snapshots: List[Dict[str, object]] = []

    # ------------------------------------------------------------------
    # parent control plane

    @property
    def port(self) -> int:
        if self._port is None:
            raise RuntimeError("cluster not started")
        return self._port

    @property
    def worker_pids(self) -> List[int]:
        return [rec.pid for rec in self._records if rec.pid is not None]

    def alive_workers(self) -> List[int]:
        return [
            rec.pid
            for rec in self._records
            if rec.pid is not None and rec.process.is_alive()
        ]

    def start(self) -> "ClusterEndpointServer":
        if self._started:
            raise RuntimeError("cluster already started")
        self._started = True
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            self._reuse_port_active = self.reuse_port and hasattr(
                socket, "SO_REUSEPORT"
            )
            if self._reuse_port_active:
                try:
                    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
                except OSError:
                    self._reuse_port_active = False
            sock.bind(self.listen_addr)
            sock.listen(self.backlog)
        except BaseException:
            sock.close()
            raise
        self._parent_sock = sock
        self._port = sock.getsockname()[1]

        for index in range(self.workers):
            process, parent_pipe = self._spawn_process(index)
            self._records.append(
                _WorkerRecord(index=index, process=process, pipe=parent_pipe)
            )

        try:
            deadline = time.monotonic() + self.start_timeout
            for rec in self._records:
                remaining = max(0.0, deadline - time.monotonic())
                if not rec.pipe.poll(remaining):
                    raise RuntimeError(
                        f"worker {rec.index} did not report ready "
                        f"within {self.start_timeout}s"
                    )
                tag, payload = rec.pipe.recv()
                if tag != "ready":
                    raise RuntimeError(
                        f"worker {rec.index} sent {tag!r} before ready"
                    )
                rec.pid = payload
        except BaseException:
            self.stop(graceful=False)
            raise
        finally:
            # The parent never accepts.  In SO_REUSEPORT mode keeping
            # this socket open would make the kernel hash connections
            # into a queue nobody drains; in fallback mode the workers'
            # inherited fds keep the underlying socket alive — unless
            # respawn is on, where the parent must keep its copy so
            # *future* forks can inherit an accepting fd too.
            keep_for_respawn = self.respawn and not self._reuse_port_active
            if self._parent_sock is not None and not keep_for_respawn:
                self._parent_sock.close()
                self._parent_sock = None
        if self.respawn:
            self._monitor_thread = threading.Thread(
                target=self._monitor_loop, name="cluster-respawn-monitor", daemon=True
            )
            self._monitor_thread.start()
        return self

    def _spawn_process(self, index: int):
        parent_pipe, child_pipe = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=self._worker_entry,
            args=(index, child_pipe),
            daemon=True,
            name=f"cluster-worker-{index}",
        )
        process.start()
        child_pipe.close()
        return process, parent_pipe

    # ------------------------------------------------------------------
    # respawn supervision

    def _monitor_loop(self) -> None:
        while not self._monitor_stop.wait(self.respawn_poll_interval):
            with self._lock:
                if self._stopped:
                    return
                for rec in self._records:
                    if rec.stopped or rec.process.is_alive():
                        continue
                    if self._respawns_used >= self.max_respawns:
                        continue  # budget exhausted: stays dead
                    self._respawn_worker(rec)

    def _respawn_worker(self, rec: _WorkerRecord) -> None:
        """Fork a replacement into a dead worker's slot.

        The budget is charged for the *attempt*: a replacement that dies
        before reporting ready still consumed a fork, and an unbounded
        retry of a crash-looping factory must never fork-bomb the host.
        """
        self._drain_pipe(rec)
        if rec.stopped:  # deliberate exit raced the monitor: not a crash
            return
        self._respawns_used += 1
        if rec.last_snapshot:
            # Retire the dead worker's final ledger into the aggregate.
            self._retired_snapshots.append(dict(rec.last_snapshot))
        try:
            rec.pipe.close()
        except OSError:  # pragma: no cover
            pass
        rec.process.join(timeout=0)
        process, parent_pipe = self._spawn_process(rec.index)
        try:
            if not parent_pipe.poll(self.start_timeout):
                raise RuntimeError("respawned worker never reported ready")
            tag, payload = parent_pipe.recv()
            if tag != "ready":
                raise RuntimeError(f"respawned worker sent {tag!r} before ready")
        except (RuntimeError, EOFError, OSError):
            process.terminate()
            process.join(timeout=5.0)
            parent_pipe.close()
            return
        rec.process = process
        rec.pipe = parent_pipe
        rec.pid = payload
        rec.last_snapshot = {}
        rec.restarts += 1

    def snapshot(self) -> Dict[str, object]:
        """Aggregated cluster stats plus the per-worker breakdown.

        Live workers are polled over their control pipe; dead or
        unresponsive workers contribute their last known snapshot.
        Workers retired by a respawn contribute their final snapshot, so
        counters survive restarts; ``"respawns"`` counts the restarts.
        """
        with self._lock:
            for rec in self._records:
                if rec.stopped or not rec.process.is_alive():
                    self._drain_pipe(rec)
                    continue
                try:
                    rec.pipe.send(("snapshot", None))
                    if rec.pipe.poll(self.control_timeout):
                        tag, payload = rec.pipe.recv()
                        if tag in ("snapshot", "stopped"):
                            rec.last_snapshot = payload
                        if tag == "stopped":
                            rec.stopped = True
                except (BrokenPipeError, EOFError, OSError):
                    pass
            return self._aggregate()

    def stop(
        self, graceful: bool = True, timeout: Optional[float] = None
    ) -> Dict[str, object]:
        """Rolling shutdown: drain workers one at a time; return final stats."""
        if self._stopped:
            return self.snapshot()
        self._monitor_stop.set()
        if self._monitor_thread is not None:
            self._monitor_thread.join(timeout=self.start_timeout + 5.0)
            self._monitor_thread = None
        with self._lock:
            if self._stopped:
                return self._aggregate()
            self._stopped = True
            join_budget = timeout if timeout is not None else 30.0
            for rec in self._records:
                self._stop_worker(rec, graceful, timeout, join_budget)
            if self._parent_sock is not None:  # respawn spare, or failed start()
                self._parent_sock.close()
                self._parent_sock = None
            return self._aggregate()

    def _aggregate(self) -> Dict[str, object]:
        worker_snaps = self._retired_snapshots + [
            dict(rec.last_snapshot) for rec in self._records
        ]
        agg = aggregate_snapshots(worker_snaps)
        agg["workers"] = worker_snaps
        agg["worker_count"] = len(self._records)
        agg["alive_workers"] = len(self.alive_workers())
        agg["respawns"] = self._respawns_used
        return agg

    def _drain_pipe(self, rec: _WorkerRecord) -> None:
        """Capture any final snapshot a self-exited worker left queued.

        A worker that shut down on its own (e.g. SIGTERM from outside)
        sends ``("stopped", snapshot)`` before exiting; without draining,
        its final ledger would be lost to the aggregate.
        """
        try:
            while rec.pipe.poll(0):
                tag, payload = rec.pipe.recv()
                if tag in ("snapshot", "stopped"):
                    rec.last_snapshot = payload
                if tag == "stopped":
                    rec.stopped = True
        except (BrokenPipeError, EOFError, OSError):
            pass

    def _stop_worker(
        self,
        rec: _WorkerRecord,
        graceful: bool,
        timeout: Optional[float],
        join_budget: float,
    ) -> None:
        if rec.stopped or not rec.process.is_alive():
            self._drain_pipe(rec)
            rec.process.join(timeout=0)
            rec.stopped = True
            return
        try:
            rec.pipe.send(("stop", {"graceful": graceful, "timeout": timeout}))
            deadline = time.monotonic() + join_budget
            while time.monotonic() < deadline:
                remaining = max(0.0, deadline - time.monotonic())
                if not rec.pipe.poll(remaining):
                    break
                tag, payload = rec.pipe.recv()
                if tag in ("snapshot", "stopped"):
                    rec.last_snapshot = payload
                if tag == "stopped":
                    break
        except (BrokenPipeError, EOFError, OSError):
            pass
        rec.process.join(timeout=join_budget)
        if rec.process.is_alive():
            rec.process.terminate()
            rec.process.join(timeout=5.0)
        rec.stopped = True
        try:
            rec.pipe.close()
        except OSError:  # pragma: no cover
            pass

    # ------------------------------------------------------------------
    # worker side (runs in the forked child)

    def _worker_entry(self, index: int, pipe) -> None:
        try:
            listen_sock = self._make_worker_socket()
            asyncio.run(self._worker_main(listen_sock, pipe))
        except KeyboardInterrupt:  # pragma: no cover
            pass
        finally:
            try:
                pipe.close()
            except OSError:  # pragma: no cover
                pass
        os._exit(0)

    def _make_worker_socket(self) -> socket.socket:
        if not self._reuse_port_active:
            # Shared accept queue: every worker accepts on its fork-
            # inherited copy of the parent's fd; the kernel balances.
            return self._parent_sock
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
            sock.bind((self.listen_addr[0], self._port))
            sock.listen(self.backlog)
        except BaseException:
            sock.close()
            raise
        # Our SO_REUSEPORT sibling is bound; the inherited parent copy
        # must not linger as a second (undrained) accept queue.  (A
        # respawned child inherits no copy — the parent closed its
        # socket once the original pool was ready.)
        if self._parent_sock is not None:
            self._parent_sock.close()
        return sock

    async def _worker_main(self, listen_sock: socket.socket, pipe) -> None:
        loop = asyncio.get_running_loop()
        session_cache = (
            self.session_cache_factory()
            if self.session_cache_factory is not None
            else None
        )
        server = AsyncEndpointServer(
            (self.listen_addr[0], self._port),
            self.connection_factory,
            self.handler,
            session_cache=session_cache,
            max_connections=self.max_connections,
            handshake_timeout=self.handshake_timeout,
            idle_timeout=self.idle_timeout,
            backlog=self.backlog,
            instruments=Instruments(),
            listen_sock=listen_sock,
        )
        await server.start()

        stop_event = asyncio.Event()
        stop_args: Dict[str, object] = {}

        def on_sigterm() -> None:
            stop_args.setdefault("graceful", True)
            stop_event.set()

        def on_command() -> None:
            try:
                tag, payload = pipe.recv()
            except (EOFError, OSError):
                # Parent is gone; drain and exit rather than orphan.
                loop.remove_reader(pipe.fileno())
                stop_event.set()
                return
            if tag == "snapshot":
                try:
                    pipe.send(("snapshot", self._worker_snapshot(server)))
                except (BrokenPipeError, OSError):  # pragma: no cover
                    pass
            elif tag == "stop":
                stop_args.update(payload or {})
                stop_event.set()

        loop.add_signal_handler(signal.SIGTERM, on_sigterm)
        loop.add_reader(pipe.fileno(), on_command)
        pipe.send(("ready", os.getpid()))

        await stop_event.wait()
        loop.remove_reader(pipe.fileno())
        loop.remove_signal_handler(signal.SIGTERM)
        await server.stop(
            graceful=bool(stop_args.get("graceful", True)),
            timeout=stop_args.get("timeout"),
        )
        try:
            pipe.send(("stopped", self._worker_snapshot(server)))
        except (BrokenPipeError, OSError):  # pragma: no cover
            pass

    def _worker_snapshot(self, server: AsyncEndpointServer) -> Dict[str, object]:
        snap = server.snapshot()
        snap["pid"] = os.getpid()
        if server.instruments is not None:
            snap["instruments"] = server.instruments.snapshot()
        return snap
