"""Multi-process sharded serving runtime.

One listening port, N forked workers, each running the asyncio endpoint
server over the unchanged sans-I/O protocol seam.  See
:mod:`repro.mp.cluster` for the sharding strategies (SO_REUSEPORT vs
inherited-fd), the control-pipe protocol, and the fork-inherited ticket
keys that make cross-worker session resumption stateless.
"""

from repro.mp.cluster import ClusterEndpointServer, aggregate_snapshots

__all__ = ["ClusterEndpointServer", "aggregate_snapshots"]
