"""Human-readable wire traces for TLS and mcTLS byte streams.

A released protocol library needs a way to answer "what is actually on
the wire?".  :func:`describe_stream` decodes record headers and (for
plaintext records) handshake message structure into one line per item —
the output the tests snapshot and the examples print when run with
``MCTLS_TRACE=1``.

Encrypted fragments are summarised by length only; this is a passive
observer with no keys, exactly what an on-path third party sees.
"""

from __future__ import annotations

from typing import List

from repro import framing as frm
from repro.mctls import messages as mm
from repro.mctls import record as mrec
from repro.tls import messages as tls_msgs
from repro.tls import record as rec
from repro.wire import DecodeError

_CONTENT_NAMES = {
    rec.CHANGE_CIPHER_SPEC: "ChangeCipherSpec",
    rec.ALERT: "Alert",
    rec.HANDSHAKE: "Handshake",
    rec.APPLICATION_DATA: "ApplicationData",
}

_HANDSHAKE_NAMES = {
    tls_msgs.CLIENT_HELLO: "ClientHello",
    tls_msgs.SERVER_HELLO: "ServerHello",
    tls_msgs.CERTIFICATE: "Certificate",
    tls_msgs.SERVER_KEY_EXCHANGE: "ServerKeyExchange",
    tls_msgs.SERVER_HELLO_DONE: "ServerHelloDone",
    tls_msgs.CLIENT_KEY_EXCHANGE: "ClientKeyExchange",
    tls_msgs.FINISHED: "Finished",
    tls_msgs.MIDDLEBOX_HELLO: "MiddleboxHello",
    tls_msgs.MIDDLEBOX_CERTIFICATE: "MiddleboxCertificate",
    tls_msgs.MIDDLEBOX_KEY_EXCHANGE: "MiddleboxKeyExchange",
    tls_msgs.MIDDLEBOX_KEY_MATERIAL: "MiddleboxKeyMaterial",
    tls_msgs.WARRANT_ISSUE: "WarrantIssue",
    tls_msgs.DELEGATED_KEY_MATERIAL: "DelegatedKeyMaterial",
}

_PERM_NAMES = {0: "none", 1: "read", 2: "write"}


def _framing_ext_note(hello) -> str:
    """Render the mcTLS framing offer/echo carried in a hello, if any.

    Shows the offered framing by name plus the per-field sub-context
    declarations (``ctx<N>:name[start:end],...``) so a capture makes the
    negotiated record geometry explicit — framing is negotiated, never
    implied by the stream.
    """
    ext = hello.find_extension(mm.EXT_MCTLS_FRAMING)
    if ext is None:
        return ""
    framing_id, schemas = mm.decode_framing_offer(ext)
    try:
        name = frm.framing_by_id(framing_id).name
    except frm.FramingError:
        name = f"id{framing_id}"
    note = f" framing={name}"
    if schemas:
        parts = []
        for schema in schemas:
            fields = ",".join(
                f"{f.name}[{f.start}:{f.end}]" for f in schema.fields
            )
            parts.append(f"ctx{schema.context_id}:{fields}")
        note += " fields=" + " ".join(parts)
    return note


def _describe_handshake_message(msg_type: int, body: bytes) -> str:
    name = _HANDSHAKE_NAMES.get(msg_type, f"handshake[{msg_type}]")
    detail = ""
    try:
        if msg_type == tls_msgs.CLIENT_HELLO:
            hello = tls_msgs.ClientHello.decode(body)
            detail = f" suites={len(hello.cipher_suites)}"
            if hello.session_id:
                detail += (
                    f" session_id={len(hello.session_id)}B (resumption offer)"
                )
            ext = hello.find_extension(tls_msgs.EXT_MIDDLEBOX_LIST)
            if ext is not None:
                from repro.mctls.contexts import SessionTopology

                topo = SessionTopology.decode(ext)
                detail += (
                    f" middleboxes={len(topo.middleboxes)}"
                    f" contexts={len(topo.contexts)}"
                )
            detail += _framing_ext_note(hello)
        elif msg_type == tls_msgs.SERVER_HELLO:
            hello = tls_msgs.ServerHello.decode(body)
            detail = f" suite=0x{hello.cipher_suite:04x}"
            if hello.session_id:
                detail += f" session_id={len(hello.session_id)}B"
            mode = hello.find_extension(mm.EXT_MCTLS_MODE)
            if mode is not None:
                detail += f" mode={mode[0]}"
            detail += _framing_ext_note(hello)
        elif msg_type == tls_msgs.CERTIFICATE:
            message = tls_msgs.CertificateMessage.decode(body)
            detail = " chain=[" + ", ".join(c.subject for c in message.chain) + "]"
        elif msg_type == tls_msgs.MIDDLEBOX_HELLO:
            hello = mm.MiddleboxHello.decode(body)
            detail = f" mbox={hello.mbox_id}"
        elif msg_type == tls_msgs.MIDDLEBOX_CERTIFICATE:
            message = mm.MiddleboxCertificateMessage.decode(body)
            detail = f" mbox={message.mbox_id} chain=[" + ", ".join(
                c.subject for c in message.chain
            ) + "]"
        elif msg_type == tls_msgs.MIDDLEBOX_KEY_EXCHANGE:
            ke = mm.MiddleboxKeyExchange.decode(body)
            towards = "client" if ke.direction == mm.TOWARD_CLIENT else "server"
            detail = f" mbox={ke.mbox_id} toward={towards}"
        elif msg_type == tls_msgs.MIDDLEBOX_KEY_MATERIAL:
            mkm = mm.MiddleboxKeyMaterial.decode(body)
            sender = "client" if mkm.sender == mm.SENDER_CLIENT else "server"
            target = "endpoint" if mkm.target == 0xFF else f"mbox {mkm.target}"
            detail = f" from={sender} to={target} sealed={len(mkm.sealed)}B"
        elif msg_type == tls_msgs.WARRANT_ISSUE:
            from repro.mdtls import messages as mdm

            issue = mdm.WarrantIssue.decode(body)
            sender = "client" if issue.sender == mm.SENDER_CLIENT else "server"
            grants = ", ".join(
                f"mbox{w.mbox_id}:{{"
                + ",".join(
                    f"{ctx}={_PERM_NAMES.get(int(perm), int(perm))}"
                    for ctx, perm in sorted(w.grants.items())
                )
                + "}"
                for w in issue.warrants
            )
            detail = f" issuer={sender} warrants=[{grants}]"
        elif msg_type == tls_msgs.DELEGATED_KEY_MATERIAL:
            from repro.mdtls import messages as mdm

            dkm = mdm.DelegatedKeyMaterial.decode(body)
            detail = f" to=mbox {dkm.target} sealed={len(dkm.sealed)}B"
    except DecodeError:
        detail = " (body undecodable)"
    return f"{name} ({len(body)}B){detail}"


def _trailer_note(mctls: bool, context_id, fr=None) -> str:
    """The structural layout of a protected mcTLS record's trailer.

    Context 0 (the handshake/default context) carries a single MAC;
    contexts >= 1 carry the paper's three-MAC trailer — one MAC per key
    class — so endpoints, writers and readers can each verify exactly
    what their permission allows (§3.3).  Compact-framed records carry
    the same trailer truncated to 8 bytes per MAC, followed by one
    truncated MAC per declared sub-context field.
    """
    if not mctls or context_id is None:
        return ""
    compact = fr is not None and fr.field_macs
    if context_id == 0:
        return "; payload || MAC8" if compact else "; payload || MAC"
    if compact:
        return (
            "; payload || MAC_endpoints8 || MAC_writers8 || MAC_readers8"
            " || field MACs"
        )
    return "; payload || MAC_endpoints || MAC_writers || MAC_readers"


def describe_stream(data: bytes, mctls: bool = True, encrypted: bool = False) -> List[str]:
    """One description line per record in ``data``.

    The description is stateful across the stream: once a
    ChangeCipherSpec is seen, subsequent handshake records (the Finished
    flight) are summarised as protected instead of parsed — which is all
    a passive observer sees, and also what makes whole-handshake captures
    safe to trace.  ``encrypted`` marks the stream as post-CCS from the
    first byte.  An abbreviated (resumption) flow is called out when a
    server flight goes ServerHello → CCS without a Certificate.
    Incomplete trailing bytes are reported as such.
    """
    lines: List[str] = []
    buf = bytearray(data)
    try:
        if mctls:
            # Per-record framing auto-detect: the compact marker byte
            # range (0xD0-0xD3) is disjoint from the default content
            # types, so a mixed default/compact capture splits cleanly.
            records = []
            while buf:
                fr = frm.detect_mctls_framing(buf[0])
                item = mrec.split_one(buf, fr)
                if item is None:
                    break
                ct, ctx, frag, _ = item
                records.append((ct, ctx, frag, fr))
        else:
            layer = rec.RecordLayer()
            layer.feed(bytes(buf))
            buf.clear()
            records = [(ct, None, frag, None) for ct, frag in layer.read_all()]
    except (mrec.McTLSRecordError, rec.RecordError) as exc:
        lines.append(f"!! malformed record stream: {exc}")
        return lines

    seen_ccs = encrypted
    seen_server_hello = False
    seen_certificate = False
    for content_type, context_id, fragment, fr in records:
        prefix = _CONTENT_NAMES.get(content_type, f"type[{content_type}]")
        ctx_part = f" ctx={context_id}" if context_id is not None else ""
        if content_type == rec.APPLICATION_DATA:
            note = _trailer_note(mctls, context_id, fr)
            lines.append(f"{prefix}{ctx_part} <{len(fragment)}B protected{note}>")
            continue
        if content_type == rec.CHANGE_CIPHER_SPEC:
            note = ""
            if seen_server_hello and not seen_certificate:
                note = " (abbreviated handshake: resumption accepted)"
            seen_ccs = True
            lines.append(f"{prefix}{ctx_part} {len(fragment)}B{note}")
            continue
        if content_type == rec.HANDSHAKE:
            if seen_ccs:
                # Post-CCS handshake records (the Finished flight) are
                # encrypted; only their size is visible on the path.
                lines.append(f"{prefix}{ctx_part} <{len(fragment)}B protected>")
                continue
            hs = tls_msgs.HandshakeBuffer()
            hs.feed(fragment)
            while True:
                message = hs.next_message()
                if message is None:
                    break
                msg_type, body, _ = message
                if msg_type == tls_msgs.SERVER_HELLO:
                    seen_server_hello = True
                elif msg_type == tls_msgs.CERTIFICATE:
                    seen_certificate = True
                lines.append(
                    f"{prefix}{ctx_part} :: "
                    + _describe_handshake_message(msg_type, body)
                )
            if hs.has_partial:
                lines.append(f"{prefix}{ctx_part} :: (partial message)")
        elif content_type == rec.ALERT and len(fragment) == 2:
            level = "fatal" if fragment[0] == 2 else "warning"
            lines.append(f"{prefix}{ctx_part} {level} code={fragment[1]}")
        else:
            lines.append(f"{prefix}{ctx_part} {len(fragment)}B")
    if buf:
        lines.append(f"... {len(buf)}B incomplete trailing record")
    return lines


def trace_handshake(chain_or_events, label: str = "") -> str:  # pragma: no cover
    """Convenience: join described lines (for interactive debugging)."""
    return "\n".join(describe_stream(chain_or_events))
