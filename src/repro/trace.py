"""Human-readable wire traces for TLS and mcTLS byte streams.

A released protocol library needs a way to answer "what is actually on
the wire?".  :func:`describe_stream` decodes record headers and (for
plaintext records) handshake message structure into one line per item —
the output the tests snapshot and the examples print when run with
``MCTLS_TRACE=1``.

Encrypted fragments are summarised by length only; this is a passive
observer with no keys, exactly what an on-path third party sees.
"""

from __future__ import annotations

from typing import List

from repro.mctls import messages as mm
from repro.mctls import record as mrec
from repro.tls import messages as tls_msgs
from repro.tls import record as rec
from repro.wire import DecodeError

_CONTENT_NAMES = {
    rec.CHANGE_CIPHER_SPEC: "ChangeCipherSpec",
    rec.ALERT: "Alert",
    rec.HANDSHAKE: "Handshake",
    rec.APPLICATION_DATA: "ApplicationData",
}

_HANDSHAKE_NAMES = {
    tls_msgs.CLIENT_HELLO: "ClientHello",
    tls_msgs.SERVER_HELLO: "ServerHello",
    tls_msgs.CERTIFICATE: "Certificate",
    tls_msgs.SERVER_KEY_EXCHANGE: "ServerKeyExchange",
    tls_msgs.SERVER_HELLO_DONE: "ServerHelloDone",
    tls_msgs.CLIENT_KEY_EXCHANGE: "ClientKeyExchange",
    tls_msgs.FINISHED: "Finished",
    tls_msgs.MIDDLEBOX_HELLO: "MiddleboxHello",
    tls_msgs.MIDDLEBOX_CERTIFICATE: "MiddleboxCertificate",
    tls_msgs.MIDDLEBOX_KEY_EXCHANGE: "MiddleboxKeyExchange",
    tls_msgs.MIDDLEBOX_KEY_MATERIAL: "MiddleboxKeyMaterial",
}


def _describe_handshake_message(msg_type: int, body: bytes) -> str:
    name = _HANDSHAKE_NAMES.get(msg_type, f"handshake[{msg_type}]")
    detail = ""
    try:
        if msg_type == tls_msgs.CLIENT_HELLO:
            hello = tls_msgs.ClientHello.decode(body)
            detail = f" suites={len(hello.cipher_suites)}"
            ext = hello.find_extension(tls_msgs.EXT_MIDDLEBOX_LIST)
            if ext is not None:
                from repro.mctls.contexts import SessionTopology

                topo = SessionTopology.decode(ext)
                detail += (
                    f" middleboxes={len(topo.middleboxes)}"
                    f" contexts={len(topo.contexts)}"
                )
        elif msg_type == tls_msgs.SERVER_HELLO:
            hello = tls_msgs.ServerHello.decode(body)
            detail = f" suite=0x{hello.cipher_suite:04x}"
            mode = hello.find_extension(mm.EXT_MCTLS_MODE)
            if mode is not None:
                detail += f" mode={mode[0]}"
        elif msg_type == tls_msgs.CERTIFICATE:
            message = tls_msgs.CertificateMessage.decode(body)
            detail = " chain=[" + ", ".join(c.subject for c in message.chain) + "]"
        elif msg_type == tls_msgs.MIDDLEBOX_HELLO:
            hello = mm.MiddleboxHello.decode(body)
            detail = f" mbox={hello.mbox_id}"
        elif msg_type == tls_msgs.MIDDLEBOX_CERTIFICATE:
            message = mm.MiddleboxCertificateMessage.decode(body)
            detail = f" mbox={message.mbox_id} chain=[" + ", ".join(
                c.subject for c in message.chain
            ) + "]"
        elif msg_type == tls_msgs.MIDDLEBOX_KEY_EXCHANGE:
            ke = mm.MiddleboxKeyExchange.decode(body)
            towards = "client" if ke.direction == mm.TOWARD_CLIENT else "server"
            detail = f" mbox={ke.mbox_id} toward={towards}"
        elif msg_type == tls_msgs.MIDDLEBOX_KEY_MATERIAL:
            mkm = mm.MiddleboxKeyMaterial.decode(body)
            sender = "client" if mkm.sender == mm.SENDER_CLIENT else "server"
            target = "endpoint" if mkm.target == 0xFF else f"mbox {mkm.target}"
            detail = f" from={sender} to={target} sealed={len(mkm.sealed)}B"
    except DecodeError:
        detail = " (body undecodable)"
    return f"{name} ({len(body)}B){detail}"


def describe_stream(data: bytes, mctls: bool = True, encrypted: bool = False) -> List[str]:
    """One description line per record in ``data``.

    ``encrypted`` marks the stream as post-CCS (fragments summarised,
    not parsed).  Incomplete trailing bytes are reported as such.
    """
    lines: List[str] = []
    buf = bytearray(data)
    try:
        if mctls:
            records = [
                (ct, ctx, frag) for ct, ctx, frag, _ in mrec.split_records(buf)
            ]
        else:
            layer = rec.RecordLayer()
            layer.feed(bytes(buf))
            buf.clear()
            records = [(ct, None, frag) for ct, frag in layer.read_all()]
    except (mrec.McTLSRecordError, rec.RecordError) as exc:
        lines.append(f"!! malformed record stream: {exc}")
        return lines

    for content_type, context_id, fragment in records:
        prefix = _CONTENT_NAMES.get(content_type, f"type[{content_type}]")
        ctx_part = f" ctx={context_id}" if context_id is not None else ""
        if encrypted or (content_type == rec.APPLICATION_DATA):
            lines.append(f"{prefix}{ctx_part} <{len(fragment)}B protected>")
            continue
        if content_type == rec.HANDSHAKE:
            hs = tls_msgs.HandshakeBuffer()
            hs.feed(fragment)
            while True:
                message = hs.next_message()
                if message is None:
                    break
                msg_type, body, _ = message
                lines.append(
                    f"{prefix}{ctx_part} :: "
                    + _describe_handshake_message(msg_type, body)
                )
            if hs.has_partial:
                lines.append(f"{prefix}{ctx_part} :: (partial message)")
        elif content_type == rec.ALERT and len(fragment) == 2:
            level = "fatal" if fragment[0] == 2 else "warning"
            lines.append(f"{prefix}{ctx_part} {level} code={fragment[1]}")
        else:
            lines.append(f"{prefix}{ctx_part} {len(fragment)}B")
    if buf:
        lines.append(f"... {len(buf)}B incomplete trailing record")
    return lines


def trace_handshake(chain_or_events, label: str = "") -> str:  # pragma: no cover
    """Convenience: join described lines (for interactive debugging)."""
    return "\n".join(describe_stream(chain_or_events))
